"""Property-based tests (hypothesis) for the core data structures and invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.rng import SeededRng
from repro.common.types import OwnershipMap, Transfer
from repro.core.accounts import Ledger, balance_from_transfers
from repro.core.consensus_from_asset_transfer import ConsensusFromAssetTransfer
from repro.core.k_shared_asset_transfer import KSharedAssetTransfer
from repro.core.snapshot_asset_transfer import SnapshotAssetTransfer
from repro.shared_memory.runtime import SharedMemoryProgram, SharedMemoryRuntime
from repro.shared_memory.scheduler import RandomScheduler
from repro.spec.asset_transfer_spec import AssetTransferSpec, read_op, transfer_op
from repro.spec.linearizability import LinearizabilityChecker
from repro.broadcast.secure_broadcast import SourceOrderBuffer


ACCOUNTS = ("a", "b", "c")
OWNER_OF = {"a": 0, "b": 1, "c": 2}
OWNERSHIP = OwnershipMap.single_owner(OWNER_OF)
INITIAL = {"a": 12, "b": 7, "c": 0}

transfer_strategy = st.tuples(
    st.sampled_from(ACCOUNTS),
    st.sampled_from(ACCOUNTS),
    st.integers(min_value=0, max_value=15),
).filter(lambda t: t[0] != t[1])


class TestSequentialEquivalenceProperties:
    @given(st.lists(transfer_strategy, min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_figure1_matches_the_sequential_specification(self, operations):
        """Sequentially, Figure 1 behaves exactly like the sequential spec."""
        implementation = SnapshotAssetTransfer(OWNERSHIP, INITIAL)
        spec = AssetTransferSpec(OWNERSHIP, INITIAL)
        state = spec.initial_state()
        for source, destination, amount in operations:
            process = OWNER_OF[source]
            expected = spec.apply(state, process, transfer_op(source, destination, amount))
            state = expected.new_state
            observed = implementation.transfer_now(process, source, destination, amount)
            assert observed == expected.response
        for account in ACCOUNTS:
            assert implementation.read_now(OWNER_OF[account], account) == spec.balance_in(
                state, account
            )

    @given(st.lists(transfer_strategy, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_figure3_matches_the_sequential_specification(self, operations):
        shared_ownership = OwnershipMap({"a": (0, 3), "b": (1,), "c": (2,)})
        implementation = KSharedAssetTransfer(shared_ownership, INITIAL)
        spec = AssetTransferSpec(shared_ownership, INITIAL)
        state = spec.initial_state()
        for source, destination, amount in operations:
            process = min(shared_ownership.owners(source))
            expected = spec.apply(state, process, transfer_op(source, destination, amount))
            state = expected.new_state
            observed = implementation.transfer_now(process, source, destination, amount)
            assert observed == expected.response

    @given(st.lists(transfer_strategy, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_supply_conservation_and_non_negativity(self, operations):
        """Total supply is invariant and no balance ever goes negative."""
        ledger = Ledger.with_initial_balance(OWNERSHIP, 10)
        supply = ledger.total_supply()
        for source, destination, amount in operations:
            ledger.apply(Transfer(source, destination, amount, issuer=OWNER_OF[source]))
            assert ledger.total_supply() == supply
            assert all(balance >= 0 for balance in ledger.balances.values())


class TestConcurrentProperties:
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=3))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_figure1_linearizable_under_random_schedules(self, seed, processes):
        """E1 as a property: any random interleaving yields a linearizable history."""
        ownership = OwnershipMap.single_owner({ACCOUNTS[i]: i for i in range(processes)})
        balances = {ACCOUNTS[i]: 10 for i in range(processes)}
        implementation = SnapshotAssetTransfer(ownership, balances)
        programs = []
        for process in range(processes):
            source = ACCOUNTS[process]
            destination = ACCOUNTS[(process + 1) % processes]
            program = SharedMemoryProgram(process)
            program.add(
                transfer_op(source, destination, 6),
                lambda p=process, s=source, d=destination: implementation.transfer(p, s, d, 6),
            )
            program.add(read_op(source), lambda p=process, s=source: implementation.read(p, s))
            programs.append(program)
        runtime = SharedMemoryRuntime(RandomScheduler(SeededRng(seed)))
        outcome = runtime.run(programs)
        spec = AssetTransferSpec(ownership, balances)
        assert LinearizabilityChecker(spec).check(outcome.history).linearizable

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=4))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_figure2_agreement_and_validity(self, seed, k):
        """E2 as a property: consensus from k-shared asset transfer always agrees."""
        protocol = ConsensusFromAssetTransfer(k=k)
        programs = []
        for process in range(k):
            program = SharedMemoryProgram(process)
            program.add(("propose", process), lambda p=process: protocol.propose(p, p))
            programs.append(program)
        outcome = SharedMemoryRuntime(RandomScheduler(SeededRng(seed))).run(programs)
        decisions = {outcome.responses_of(p)[0] for p in range(k)}
        assert len(decisions) == 1
        assert decisions.pop() in set(range(k))


class TestBroadcastBufferProperties:
    @given(st.permutations(list(range(1, 9))))
    @settings(max_examples=50, deadline=None)
    def test_source_order_buffer_always_releases_in_order(self, arrival_order):
        released = []
        buffer = SourceOrderBuffer(lambda d: released.append(d.sequence))
        for sequence in arrival_order:
            buffer.offer(0, sequence, f"payload-{sequence}")
        assert released == sorted(arrival_order)

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=1, max_value=6)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_source_order_buffer_never_duplicates(self, offers):
        released = []
        buffer = SourceOrderBuffer(lambda d: released.append((d.origin, d.sequence)))
        for origin, sequence in offers:
            buffer.offer(origin, sequence, "x")
        assert len(released) == len(set(released))
        for origin in {origin for origin, _ in offers}:
            sequences = [seq for org, seq in released if org == origin]
            assert sequences == sorted(sequences)
            if sequences:
                assert sequences == list(range(1, len(sequences) + 1))


class TestBalanceFunctionProperties:
    @given(st.lists(transfer_strategy, min_size=0, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_balance_from_transfers_is_order_insensitive(self, operations):
        transfers = [
            Transfer(s, d, x, issuer=OWNER_OF[s], sequence=i)
            for i, (s, d, x) in enumerate(operations)
        ]
        forward = balance_from_transfers("a", 100, transfers)
        backward = balance_from_transfers("a", 100, list(reversed(transfers)))
        assert forward == backward

    @given(st.lists(transfer_strategy, min_size=0, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_balances_sum_to_initial_supply(self, operations):
        transfers = [
            Transfer(s, d, x, issuer=OWNER_OF[s], sequence=i)
            for i, (s, d, x) in enumerate(operations)
        ]
        totals = sum(balance_from_transfers(account, 50, transfers) for account in ACCOUNTS)
        assert totals == 50 * len(ACCOUNTS)
