"""Tests for the Figure 1 algorithm (experiment E1).

The headline property: under arbitrary interleavings and crash faults, the
histories produced by the snapshot-based asset transfer are linearizable with
respect to the sequential asset-transfer specification — with only registers
underneath (via the Afek construction), i.e. consensus number 1.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import SeededRng
from repro.common.types import OwnershipMap
from repro.core.snapshot_asset_transfer import SnapshotAssetTransfer
from repro.shared_memory.afek_snapshot import AfekSnapshot
from repro.shared_memory.atomic_snapshot import AtomicSnapshot
from repro.shared_memory.runtime import SharedMemoryProgram, SharedMemoryRuntime
from repro.shared_memory.scheduler import CrashPlan, RandomScheduler, RoundRobinScheduler
from repro.spec.asset_transfer_spec import AssetTransferSpec, read_op, transfer_op
from repro.spec.linearizability import LinearizabilityChecker


BALANCES = {"a": 10, "b": 10, "c": 0}


def build(memory=None):
    ownership = OwnershipMap.single_owner({"a": 0, "b": 1, "c": 2})
    return SnapshotAssetTransfer(ownership, BALANCES, memory=memory), ownership


class TestSequentialBehaviour:
    def test_successful_transfer_updates_balances(self):
        at, _ = build()
        assert at.transfer_now(0, "a", "b", 4) is True
        assert at.read_now(1, "a") == 6
        assert at.read_now(1, "b") == 14

    def test_overdraft_fails(self):
        at, _ = build()
        assert at.transfer_now(0, "a", "b", 11) is False
        assert at.read_now(0, "a") == 10

    def test_non_owner_cannot_debit(self):
        at, _ = build()
        assert at.transfer_now(1, "a", "b", 1) is False

    def test_negative_amount_fails(self):
        at, _ = build()
        assert at.transfer_now(0, "a", "b", -5) is False

    def test_exact_balance_spend(self):
        at, _ = build()
        assert at.transfer_now(0, "a", "b", 10) is True
        assert at.transfer_now(0, "a", "b", 1) is False

    def test_received_funds_are_spendable(self):
        at, _ = build()
        assert at.transfer_now(0, "a", "c", 10) is True
        assert at.transfer_now(2, "c", "b", 7) is True
        assert at.read_now(0, "c") == 3

    def test_repeated_identical_transfers_all_count(self):
        at, _ = build()
        for _ in range(3):
            assert at.transfer_now(0, "a", "b", 2) is True
        assert at.read_now(0, "a") == 4

    def test_balances_now_helper(self):
        at, _ = build()
        at.transfer_now(0, "a", "b", 1)
        balances = at.balances_now()
        assert balances == {"a": 9, "b": 11, "c": 0}

    def test_shared_ownership_rejected(self):
        with pytest.raises(ConfigurationError):
            SnapshotAssetTransfer(OwnershipMap({"j": (0, 1)}))

    def test_unknown_initial_balance_rejected(self):
        with pytest.raises(ConfigurationError):
            SnapshotAssetTransfer(OwnershipMap.single_owner({"a": 0}), {"zzz": 1})

    def test_total_supply_conserved_over_many_transfers(self, rng):
        at, _ = build()
        accounts = ["a", "b", "c"]
        owner = {"a": 0, "b": 1, "c": 2}
        for _ in range(40):
            source = rng.choice(accounts)
            destination = rng.choice([acc for acc in accounts if acc != source])
            at.transfer_now(owner[source], source, destination, rng.randint(1, 5))
        total = sum(at.balances_now().values())
        assert total == sum(BALANCES.values())


def concurrent_programs(at):
    """Three owners transferring concurrently, plus reads."""
    p0 = SharedMemoryProgram(0)
    p0.add(transfer_op("a", "b", 6), lambda: at.transfer(0, "a", "b", 6))
    p0.add(transfer_op("a", "c", 6), lambda: at.transfer(0, "a", "c", 6))
    p0.add(read_op("c"), lambda: at.read(0, "c"))
    p1 = SharedMemoryProgram(1)
    p1.add(transfer_op("b", "a", 3), lambda: at.transfer(1, "b", "a", 3))
    p1.add(read_op("a"), lambda: at.read(1, "a"))
    p2 = SharedMemoryProgram(2)
    p2.add(read_op("b"), lambda: at.read(2, "b"))
    p2.add(transfer_op("c", "a", 1), lambda: at.transfer(2, "c", "a", 1))
    return [p0, p1, p2]


def check_linearizable(outcome):
    spec = AssetTransferSpec(OwnershipMap.single_owner({"a": 0, "b": 1, "c": 2}), BALANCES)
    return LinearizabilityChecker(spec).check(outcome.history)


class TestConcurrentLinearizability:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_interleavings_on_primitive_snapshot(self, seed):
        at, _ = build(memory=AtomicSnapshot(size=3))
        runtime = SharedMemoryRuntime(RandomScheduler(SeededRng(seed)))
        outcome = runtime.run(concurrent_programs(at))
        assert check_linearizable(outcome).linearizable

    @pytest.mark.parametrize("seed", range(4))
    def test_random_interleavings_on_register_based_snapshot(self, seed):
        # The full stack: Figure 1 over the Afek construction over registers.
        at, _ = build(memory=AfekSnapshot(size=3))
        runtime = SharedMemoryRuntime(RandomScheduler(SeededRng(seed + 100)))
        outcome = runtime.run(concurrent_programs(at))
        assert check_linearizable(outcome).linearizable

    def test_round_robin_interleaving(self):
        at, _ = build()
        outcome = SharedMemoryRuntime(RoundRobinScheduler()).run(concurrent_programs(at))
        assert check_linearizable(outcome).linearizable

    @pytest.mark.parametrize("crash_step", [1, 2, 3])
    def test_crash_between_snapshot_and_update_is_linearizable(self, crash_step):
        # Process 0 may crash right between its snapshot and its update (the
        # interesting window); the remaining history must stay linearizable.
        at, _ = build()
        plan = CrashPlan(crash_after={0: crash_step})
        runtime = SharedMemoryRuntime(RandomScheduler(SeededRng(7), crash_plan=plan))
        outcome = runtime.run(concurrent_programs(at))
        assert check_linearizable(outcome).linearizable

    def test_wait_freedom_steps_bounded_despite_crashes(self):
        # Correct processes finish in a bounded number of their own steps even
        # when another process crashes mid-operation.
        at, _ = build()
        plan = CrashPlan(crash_after={0: 1})
        runtime = SharedMemoryRuntime(RoundRobinScheduler(crash_plan=plan))
        outcome = runtime.run(concurrent_programs(at))
        assert outcome.scheduler_outcome.unfinished == ()
        for process in (1, 2):
            assert process in outcome.results

    def test_no_double_spend_under_concurrency(self):
        # Process 0's two transfers of 6 from an account holding 10 cannot
        # both succeed, under any interleaving.
        for seed in range(6):
            at, _ = build()
            runtime = SharedMemoryRuntime(RandomScheduler(SeededRng(seed)))
            outcome = runtime.run(concurrent_programs(at))
            first, second = outcome.responses_of(0)[0:2]
            incoming_possible = 3  # at most 3 arrives from b
            assert not (first and second) or incoming_possible >= 2
            # The precise invariant: the final balance of "a" is non-negative.
            assert at.read_now(0, "a") >= 0


class TestMultiDestinationTransfers:
    """The multi-destination extension noted at the end of Section 2.2."""

    def test_multi_transfer_debits_the_sum(self):
        from repro.common.types import MultiTransfer

        at, _ = build()
        multi = MultiTransfer(source="a", outputs=(("b", 3), ("c", 4)), issuer=0)
        assert at.transfer_multi_now(0, multi) is True
        assert at.read_now(0, "a") == 3
        assert at.read_now(1, "b") == 13
        assert at.read_now(2, "c") == 4

    def test_multi_transfer_is_all_or_nothing(self):
        from repro.common.types import MultiTransfer

        at, _ = build()
        multi = MultiTransfer(source="a", outputs=(("b", 6), ("c", 6)), issuer=0)
        assert at.transfer_multi_now(0, multi) is False
        assert at.read_now(0, "a") == 10
        assert at.read_now(2, "c") == 0

    def test_multi_transfer_requires_ownership(self):
        from repro.common.types import MultiTransfer

        at, _ = build()
        multi = MultiTransfer(source="a", outputs=(("b", 1),), issuer=1)
        assert at.transfer_multi_now(1, multi) is False

    def test_multi_transfer_history_is_linearizable(self):
        from repro.common.types import MultiTransfer

        at, _ = build()
        assert at.transfer_multi_now(0, MultiTransfer(source="a", outputs=(("b", 2), ("c", 2)), issuer=0))
        assert at.transfer_now(2, "c", "b", 2) is True
        assert sum(at.balances_now().values()) == sum(BALANCES.values())
