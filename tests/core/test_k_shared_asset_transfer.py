"""Tests for the Figure 3 algorithm (experiment E3).

Lemma 2: k-shared asset transfer is wait-free implementable from registers,
atomic snapshots and k-consensus objects, and the result is linearizable.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import SeededRng
from repro.common.types import OwnershipMap
from repro.core.k_shared_asset_transfer import KSharedAssetTransfer
from repro.shared_memory.runtime import SharedMemoryProgram, SharedMemoryRuntime
from repro.shared_memory.scheduler import CrashPlan, RandomScheduler, RoundRobinScheduler
from repro.spec.asset_transfer_spec import AssetTransferSpec, read_op, transfer_op
from repro.spec.linearizability import LinearizabilityChecker


OWNERSHIP = OwnershipMap({"joint": (0, 1), "x": (2,), "y": ()})
BALANCES = {"joint": 10, "x": 5, "y": 0}


def build():
    return KSharedAssetTransfer(OWNERSHIP, BALANCES)


class TestSequentialBehaviour:
    def test_each_owner_can_debit(self):
        obj = build()
        assert obj.transfer_now(0, "joint", "x", 3) is True
        assert obj.transfer_now(1, "joint", "y", 4) is True
        assert obj.read_now(2, "joint") == 3

    def test_non_owner_rejected(self):
        obj = build()
        assert obj.transfer_now(2, "joint", "x", 1) is False

    def test_overdraft_rejected_and_recorded_as_failure(self):
        obj = build()
        assert obj.transfer_now(0, "joint", "x", 11) is False
        assert obj.read_now(0, "joint") == 10

    def test_negative_amount_rejected(self):
        obj = build()
        assert obj.transfer_now(0, "joint", "x", -2) is False

    def test_incoming_funds_spendable(self):
        obj = build()
        assert obj.transfer_now(2, "x", "joint", 5) is True
        assert obj.transfer_now(0, "joint", "y", 15) is True

    def test_rounds_advance_per_account(self):
        obj = build()
        obj.transfer_now(0, "joint", "x", 1)
        obj.transfer_now(1, "joint", "x", 1)
        assert obj.rounds_used("joint") >= 2

    def test_decided_history_contains_own_transfers(self):
        obj = build()
        obj.transfer_now(0, "joint", "x", 2)
        decided = obj.decided_history(0)
        assert any(t.amount == 2 for t, _status in decided)

    def test_invalid_initial_balance_rejected(self):
        with pytest.raises(ConfigurationError):
            KSharedAssetTransfer(OWNERSHIP, {"nope": 1})

    def test_process_count_must_cover_owners(self):
        with pytest.raises(ConfigurationError):
            KSharedAssetTransfer(OWNERSHIP, BALANCES, process_count=1)


def contention_programs(obj):
    """Both owners of the shared account debit it concurrently; a third reads."""
    p0 = SharedMemoryProgram(0)
    p0.add(transfer_op("joint", "x", 6), lambda: obj.transfer(0, "joint", "x", 6))
    p0.add(read_op("joint"), lambda: obj.read(0, "joint"))
    p1 = SharedMemoryProgram(1)
    p1.add(transfer_op("joint", "y", 6), lambda: obj.transfer(1, "joint", "y", 6))
    p1.add(transfer_op("joint", "y", 2), lambda: obj.transfer(1, "joint", "y", 2))
    p2 = SharedMemoryProgram(2)
    p2.add(read_op("joint"), lambda: obj.read(2, "joint"))
    p2.add(transfer_op("x", "joint", 1), lambda: obj.transfer(2, "x", "joint", 1))
    return [p0, p1, p2]


def check(outcome):
    spec = AssetTransferSpec(OWNERSHIP, BALANCES)
    return LinearizabilityChecker(spec).check(outcome.history)


class TestConcurrentOwners:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_interleavings_are_linearizable(self, seed):
        obj = build()
        runtime = SharedMemoryRuntime(RandomScheduler(SeededRng(seed)))
        outcome = runtime.run(contention_programs(obj))
        assert check(outcome).linearizable

    def test_round_robin_is_linearizable(self):
        obj = build()
        outcome = SharedMemoryRuntime(RoundRobinScheduler()).run(contention_programs(obj))
        assert check(outcome).linearizable

    def test_contending_debits_never_overdraw(self):
        # Two owners try to withdraw 6 + (6 and 2) from a balance of 10 while
        # at most 1 arrives; the shared account can never go negative.
        for seed in range(6):
            obj = build()
            runtime = SharedMemoryRuntime(RandomScheduler(SeededRng(seed + 50)))
            runtime.run(contention_programs(obj))
            assert obj.read_now(2, "joint") >= 0

    @pytest.mark.parametrize("crash_step", [2, 4])
    def test_crash_of_one_owner_does_not_block_the_other(self, crash_step):
        obj = build()
        plan = CrashPlan(crash_after={0: crash_step})
        runtime = SharedMemoryRuntime(RandomScheduler(SeededRng(9), crash_plan=plan))
        outcome = runtime.run(contention_programs(obj))
        # The surviving owner and the reader finish all their operations.
        assert 1 in outcome.results and 2 in outcome.results
        assert check(outcome).linearizable
