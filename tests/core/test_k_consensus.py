"""Unit tests for k-consensus objects."""

import pytest

from repro.core.k_consensus import BOTTOM, KConsensus, KConsensusSeries
from repro.shared_memory.access import run_sequentially


class TestKConsensus:
    def test_first_k_invocations_return_first_value(self):
        obj = KConsensus(k=3)
        results = [obj.propose_now(p, f"v{p}") for p in range(3)]
        assert results == ["v0", "v0", "v0"]

    def test_invocations_beyond_k_return_bottom(self):
        obj = KConsensus(k=2)
        obj.propose_now(0, "a")
        obj.propose_now(1, "b")
        assert obj.propose_now(2, "c") is BOTTOM

    def test_generator_interface(self):
        obj = KConsensus(k=2)
        assert run_sequentially(obj.propose(0, 42)) == 42
        assert run_sequentially(obj.propose(1, 43)) == 42

    def test_decided_value_exposed(self):
        obj = KConsensus(k=1)
        assert obj.decided_value is BOTTOM
        obj.propose_now(0, 9)
        assert obj.decided_value == 9
        assert obj.invocation_count == 1

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KConsensus(k=0)


class TestKConsensusSeries:
    def test_lazy_materialisation(self):
        series = KConsensusSeries(k=2)
        assert len(series) == 0
        series[3].propose_now(0, "x")
        assert len(series) == 4

    def test_rounds_are_independent(self):
        series = KConsensusSeries(k=2)
        series[0].propose_now(0, "a")
        series[1].propose_now(1, "b")
        assert series.decided_prefix() == ["a", "b"]

    def test_negative_round_rejected(self):
        series = KConsensusSeries(k=2)
        with pytest.raises(IndexError):
            series[-1]

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KConsensusSeries(k=0)
