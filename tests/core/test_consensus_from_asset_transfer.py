"""Tests for the Figure 2 reduction (experiment E2).

Lemma 1: k processes solve consensus wait-free using registers and one
k-shared asset-transfer object.  We check agreement (everyone decides the
same value), validity (the decision is someone's input) and wait-freedom
(everyone decides) across sequential runs, many random interleavings, and
crash schedules — for several values of k — and also on top of the *implemented*
k-shared object of Figure 3, closing the reduction loop.
"""

import pytest

from repro.common.rng import SeededRng
from repro.common.types import OwnershipMap
from repro.core.consensus_from_asset_transfer import (
    SHARED_ACCOUNT,
    SINK_ACCOUNT,
    ConsensusFromAssetTransfer,
    make_shared_object,
    solve_consensus_sequentially,
)
from repro.core.k_shared_asset_transfer import KSharedAssetTransfer
from repro.shared_memory.runtime import SharedMemoryProgram, SharedMemoryRuntime
from repro.shared_memory.scheduler import CrashPlan, RandomScheduler, RoundRobinScheduler


def run_concurrently(k, scheduler, asset_transfer=None):
    protocol = ConsensusFromAssetTransfer(k=k, asset_transfer=asset_transfer)
    programs = []
    for process in range(k):
        program = SharedMemoryProgram(process)
        program.add(("propose", f"value-{process}"),
                    lambda p=process: protocol.propose(p, f"value-{p}"))
        programs.append(program)
    outcome = SharedMemoryRuntime(scheduler).run(programs)
    decisions = {p: outcome.responses_of(p)[0] for p in outcome.results if outcome.responses_of(p)}
    return decisions


class TestSequential:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_agreement_and_validity(self, k):
        proposals = {p: f"input-{p}" for p in range(k)}
        decisions = solve_consensus_sequentially(proposals)
        assert len(set(decisions.values())) == 1
        assert next(iter(decisions.values())) in proposals.values()

    def test_sequential_winner_is_first_to_transfer(self):
        protocol = ConsensusFromAssetTransfer(k=3)
        assert protocol.propose_now(2, "from-2") == "from-2"
        assert protocol.propose_now(0, "from-0") == "from-2"
        assert protocol.propose_now(1, "from-1") == "from-2"

    def test_process_out_of_range_rejected(self):
        protocol = ConsensusFromAssetTransfer(k=2)
        with pytest.raises(Exception):
            protocol.propose_now(5, "x")

    def test_make_shared_object_shape(self):
        obj = make_shared_object(3)
        assert obj.read_now(SHARED_ACCOUNT) == 6
        assert obj.read_now(SINK_ACCOUNT) == 0
        assert obj.sharing_degree == 3


class TestConcurrent:
    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_agreement_under_random_schedules(self, k, seed):
        decisions = run_concurrently(k, RandomScheduler(SeededRng(seed * 100 + k)))
        assert len(decisions) == k
        assert len(set(decisions.values())) == 1
        assert next(iter(decisions.values())) in {f"value-{p}" for p in range(k)}

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_agreement_under_round_robin(self, k):
        decisions = run_concurrently(k, RoundRobinScheduler())
        assert len(set(decisions.values())) == 1

    @pytest.mark.parametrize("crash_steps", [1, 2, 3])
    def test_wait_freedom_despite_a_crash(self, crash_steps):
        # Process 0 crashes after a few steps; the others must still decide
        # (and agree), because the algorithm is wait-free.
        plan = CrashPlan(crash_after={0: crash_steps})
        decisions = run_concurrently(3, RandomScheduler(SeededRng(42), crash_plan=plan))
        surviving = {p: v for p, v in decisions.items() if p != 0}
        assert set(surviving) == {1, 2}
        assert len(set(surviving.values())) == 1


class TestOnTopOfFigure3:
    """Close the loop: Figure 2 consensus over the Figure 3 implementation."""

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("seed", [11, 12])
    def test_agreement_on_implemented_object(self, k, seed):
        ownership = OwnershipMap({SHARED_ACCOUNT: range(k), SINK_ACCOUNT: ()})
        implemented = KSharedAssetTransfer(
            ownership, {SHARED_ACCOUNT: 2 * k, SINK_ACCOUNT: 0}, process_count=k
        )
        decisions = run_concurrently(
            k, RandomScheduler(SeededRng(seed)), asset_transfer=implemented
        )
        assert len(decisions) == k
        assert len(set(decisions.values())) == 1
