"""Unit tests for the linearizable asset-transfer base object."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import OwnershipMap
from repro.core.atomic_asset_transfer import AtomicAssetTransferObject
from repro.shared_memory.access import run_sequentially


def build():
    ownership = OwnershipMap({"joint": (0, 1), "sink": ()})
    return AtomicAssetTransferObject(ownership, {"joint": 10, "sink": 0})


class TestAtomicAssetTransfer:
    def test_owner_transfer_succeeds(self):
        obj = build()
        assert obj.transfer_now(0, "joint", "sink", 4) is True
        assert obj.read_now("joint") == 6

    def test_any_owner_may_debit_a_shared_account(self):
        obj = build()
        assert obj.transfer_now(1, "joint", "sink", 4) is True

    def test_non_owner_rejected(self):
        obj = build()
        assert obj.transfer_now(5, "joint", "sink", 1) is False

    def test_overdraft_rejected(self):
        obj = build()
        assert obj.transfer_now(0, "joint", "sink", 11) is False

    def test_negative_amount_rejected(self):
        obj = build()
        assert obj.transfer_now(0, "joint", "sink", -1) is False

    def test_generator_interface(self):
        obj = build()
        assert run_sequentially(obj.transfer(0, "joint", "sink", 3)) is True
        assert run_sequentially(obj.read(1, "joint")) == 7

    def test_sharing_degree_is_consensus_number(self):
        assert build().sharing_degree == 2

    def test_unknown_account_balance_rejected(self):
        with pytest.raises(ConfigurationError):
            AtomicAssetTransferObject(OwnershipMap({"x": (0,)}), {"zzz": 1})

    def test_operation_counters(self):
        obj = build()
        obj.transfer_now(0, "joint", "sink", 1)
        obj.read_now("joint")
        assert obj.transfer_count == 1
        assert obj.read_count == 1
