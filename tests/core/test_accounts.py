"""Unit tests for balance computations and the reference ledger."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import OwnershipMap, Transfer, TransferStatus
from repro.core.accounts import (
    Ledger,
    balance_from_decided_snapshot,
    balance_from_snapshot,
    balance_from_transfers,
)


class TestBalanceFromTransfers:
    def test_incoming_and_outgoing(self):
        transfers = [Transfer("a", "b", 5), Transfer("b", "a", 2)]
        assert balance_from_transfers("a", 10, transfers) == 7
        assert balance_from_transfers("b", 0, transfers) == 3

    def test_unrelated_transfers_ignored(self):
        assert balance_from_transfers("z", 4, [Transfer("a", "b", 5)]) == 4

    def test_self_transfer_is_neutral(self):
        assert balance_from_transfers("a", 4, [Transfer("a", "a", 3)]) == 4


class TestBalanceFromSnapshot:
    def test_sums_across_segments(self):
        snapshot = (
            {Transfer("a", "b", 5, issuer=0, sequence=0)},
            None,
            {Transfer("c", "a", 2, issuer=2, sequence=0)},
        )
        assert balance_from_snapshot("a", 10, snapshot) == 7

    def test_duplicate_transfer_across_segments_counts_once(self):
        transfer = Transfer("a", "b", 5, issuer=0, sequence=0)
        snapshot = ({transfer}, {transfer})
        assert balance_from_snapshot("a", 10, snapshot) == 5
        assert balance_from_snapshot("b", 0, snapshot) == 5


class TestBalanceFromDecidedSnapshot:
    def test_only_successful_transfers_count(self):
        ok = (Transfer("a", "b", 5, issuer=0, sequence=0), TransferStatus.SUCCESS)
        failed = (Transfer("a", "b", 7, issuer=0, sequence=1), TransferStatus.FAILURE)
        assert balance_from_decided_snapshot("a", 10, ({ok, failed},)) == 5

    def test_duplicates_across_segments_count_once(self):
        decision = (Transfer("a", "b", 5, issuer=0, sequence=0), TransferStatus.SUCCESS)
        assert balance_from_decided_snapshot("a", 10, ({decision}, {decision})) == 5


class TestLedger:
    def _ledger(self):
        ownership = OwnershipMap.single_owner({"a": 0, "b": 1})
        return Ledger.with_initial_balance(ownership, 10)

    def test_apply_moves_funds(self):
        ledger = self._ledger()
        assert ledger.apply(Transfer("a", "b", 4, issuer=0))
        assert ledger.balance("a") == 6
        assert ledger.balance("b") == 14

    def test_non_owner_rejected(self):
        ledger = self._ledger()
        assert not ledger.apply(Transfer("a", "b", 4, issuer=1))
        assert ledger.balance("a") == 10

    def test_overdraft_rejected(self):
        ledger = self._ledger()
        assert not ledger.apply(Transfer("a", "b", 11, issuer=0))

    def test_total_supply_invariant(self):
        ledger = self._ledger()
        ledger.apply(Transfer("a", "b", 4, issuer=0))
        ledger.apply(Transfer("b", "a", 9, issuer=1))
        assert ledger.total_supply() == 20

    def test_copy_is_independent(self):
        ledger = self._ledger()
        clone = ledger.copy()
        ledger.apply(Transfer("a", "b", 4, issuer=0))
        assert clone.balance("a") == 10

    def test_override_for_unknown_account_rejected(self):
        ownership = OwnershipMap.single_owner({"a": 0})
        with pytest.raises(ConfigurationError):
            Ledger.with_initial_balance(ownership, 10, overrides={"zzz": 1})
