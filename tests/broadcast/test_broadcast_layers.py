"""Tests for the secure-broadcast layers: Bracha, echo, account order.

The layers are sans-I/O, so most tests drive them by hand (no simulator);
end-to-end behaviour over the network is covered in tests/mp.
"""

import pytest

from repro.broadcast.account_order_broadcast import AccountOrderBroadcast
from repro.broadcast.bracha import BrachaBroadcast
from repro.broadcast.echo_broadcast import EchoBroadcast
from repro.broadcast.messages import AccountTaggedPayload, SendMessage
from repro.broadcast.secure_broadcast import SourceOrderBuffer
from repro.common.errors import ConfigurationError
from repro.crypto.signatures import SignatureScheme


class Harness:
    """Wires N layers together with an in-memory, instantly-delivering mesh."""

    def __init__(self, layer_factory, count):
        self.queues = []
        self.delivered = {i: [] for i in range(count)}
        self.layers = []
        ids = tuple(range(count))
        for own in range(count):
            layer = layer_factory(
                own_id=own,
                all_nodes=ids,
                send=lambda to, msg, own=own: self.queues.append((own, to, msg)),
                deliver=lambda d, own=own: self.delivered[own].append(d),
            )
            self.layers.append(layer)

    def flush(self, drop=None, max_rounds=50):
        """Deliver queued messages until quiescence (optionally dropping some)."""
        for _ in range(max_rounds):
            if not self.queues:
                return
            batch, self.queues = self.queues, []
            for sender, recipient, message in batch:
                if drop and drop(sender, recipient, message):
                    continue
                self.layers[recipient].on_message(sender, message)
        raise AssertionError("broadcast did not quiesce")


def bracha_factory(**kwargs):
    return BrachaBroadcast(channel="rb", **kwargs)


def echo_factory(scheme, relay_final=True):
    def factory(**kwargs):
        return EchoBroadcast(channel="eb", scheme=scheme, relay_final=relay_final, **kwargs)

    return factory


def account_factory(scheme):
    def factory(**kwargs):
        return AccountOrderBroadcast(channel="ab", scheme=scheme, **kwargs)

    return factory


class TestSourceOrderBuffer:
    def test_releases_in_sequence_order(self):
        released = []
        buffer = SourceOrderBuffer(released.append)
        buffer.offer(0, 2, "b")
        buffer.offer(0, 1, "a")
        buffer.offer(0, 3, "c")
        assert [d.payload for d in released] == ["a", "b", "c"]
        assert buffer.delivered_up_to(0) == 3
        assert buffer.reordered == 1

    def test_duplicates_ignored(self):
        released = []
        buffer = SourceOrderBuffer(released.append)
        buffer.offer(0, 1, "a")
        buffer.offer(0, 1, "a")
        assert len(released) == 1

    def test_origins_are_independent(self):
        released = []
        buffer = SourceOrderBuffer(released.append)
        buffer.offer(0, 1, "a")
        buffer.offer(1, 1, "b")
        assert {d.origin for d in released} == {0, 1}


class TestBracha:
    def test_all_correct_processes_deliver_in_source_order(self):
        harness = Harness(bracha_factory, 4)
        harness.layers[0].broadcast("first")
        harness.layers[0].broadcast("second")
        harness.flush()
        for delivered in harness.delivered.values():
            assert [d.payload for d in delivered] == ["first", "second"]
            assert [d.sequence for d in delivered] == [1, 2]

    def test_quadratic_message_complexity(self):
        harness = Harness(bracha_factory, 4)
        harness.layers[0].broadcast("x")
        harness.flush()
        total = sum(layer.stats.messages_sent for layer in harness.layers)
        # 1 SEND to each of N, then N echo broadcasts and N ready broadcasts.
        assert total == 4 + 4 * 4 + 4 * 4

    def test_equivocating_origin_cannot_cause_disagreement(self):
        harness = Harness(bracha_factory, 4)
        # A Byzantine origin (3) sends conflicting SENDs: "a" to {0,1}, "b" to {2}.
        for recipient, payload in ((0, "a"), (1, "a"), (2, "b")):
            harness.layers[recipient].on_message(
                3, SendMessage(channel="rb", origin=3, sequence=1, payload=payload)
            )
        harness.flush()
        delivered_payloads = {
            d.payload for delivered in harness.delivered.values() for d in delivered
        }
        assert len(delivered_payloads) <= 1

    def test_delivery_despite_one_silent_process(self):
        harness = Harness(bracha_factory, 4)
        harness.layers[0].broadcast("x")
        harness.flush(drop=lambda s, r, m: s == 3 or r == 3)
        for node in (0, 1, 2):
            assert [d.payload for d in harness.delivered[node]] == ["x"]

    def test_fault_tolerance_bound_enforced(self):
        with pytest.raises(ConfigurationError):
            BrachaBroadcast(
                channel="rb", own_id=0, all_nodes=(0, 1, 2), send=lambda *_: None,
                deliver=lambda *_: None, fault_tolerance=1,
            )

    def test_non_origin_send_ignored(self):
        harness = Harness(bracha_factory, 4)
        harness.layers[1].on_message(
            2, SendMessage(channel="rb", origin=0, sequence=1, payload="forged")
        )
        harness.flush()
        assert all(not delivered for delivered in harness.delivered.values())


class TestEchoBroadcast:
    def test_all_deliver_with_signatures(self):
        scheme = SignatureScheme()
        harness = Harness(echo_factory(scheme), 4)
        harness.layers[1].broadcast({"pay": 3})
        harness.flush()
        for delivered in harness.delivered.values():
            assert [d.payload for d in delivered] == [{"pay": 3}]

    def test_equivocation_yields_at_most_one_delivery(self):
        scheme = SignatureScheme()
        harness = Harness(echo_factory(scheme), 4)
        for recipient, payload in ((0, "a"), (1, "a"), (2, "b"), (3, "b")):
            harness.layers[recipient].on_message(
                1, SendMessage(channel="eb", origin=1, sequence=1, payload=payload)
            )
        harness.flush()
        payloads = {d.payload for delivered in harness.delivered.values() for d in delivered}
        assert len(payloads) <= 1

    def test_linear_complexity_without_relay(self):
        scheme = SignatureScheme()
        harness = Harness(echo_factory(scheme, relay_final=False), 4)
        harness.layers[0].broadcast("x")
        harness.flush()
        total = sum(layer.stats.messages_sent for layer in harness.layers)
        # N INIT + N acks + N FINAL = 3N.
        assert total == 3 * 4

    def test_relay_final_spreads_delivery(self):
        scheme = SignatureScheme()
        harness = Harness(echo_factory(scheme, relay_final=True), 4)
        harness.layers[0].broadcast("x")
        # Drop the origin's FINAL to node 3; the relay from others must cover it.
        from repro.broadcast.messages import FinalMessage

        harness.flush(drop=lambda s, r, m: isinstance(m, FinalMessage) and s == 0 and r == 3)
        assert [d.payload for d in harness.delivered[3]] == ["x"]

    def test_wrong_keypair_rejected(self):
        scheme = SignatureScheme()
        with pytest.raises(ConfigurationError):
            EchoBroadcast(
                channel="eb", own_id=0, all_nodes=(0, 1, 2, 3), send=lambda *_: None,
                deliver=lambda *_: None, scheme=scheme, keypair=scheme.keypair_for(1),
            )


class TestAccountOrderBroadcast:
    def test_in_order_account_sequences_deliver(self):
        scheme = SignatureScheme()
        harness = Harness(account_factory(scheme), 4)
        harness.layers[0].broadcast(AccountTaggedPayload(account="acc", account_sequence=1, body="t1"))
        harness.flush()
        harness.layers[0].broadcast(AccountTaggedPayload(account="acc", account_sequence=2, body="t2"))
        harness.flush()
        for delivered in harness.delivered.values():
            assert [d.payload.body for d in delivered] == ["t1", "t2"]

    def test_out_of_order_account_sequence_is_not_acknowledged(self):
        scheme = SignatureScheme()
        harness = Harness(account_factory(scheme), 4)
        harness.layers[0].broadcast(AccountTaggedPayload(account="acc", account_sequence=2, body="gap"))
        harness.flush()
        assert all(not delivered for delivered in harness.delivered.values())
        assert harness.layers[1].delivered_account_sequence("acc") == 0

    def test_untagged_payloads_behave_like_echo_broadcast(self):
        scheme = SignatureScheme()
        harness = Harness(account_factory(scheme), 4)
        harness.layers[2].broadcast("plain")
        harness.flush()
        for delivered in harness.delivered.values():
            assert [d.payload for d in delivered] == ["plain"]
