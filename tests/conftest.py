"""Shared fixtures for the test suite.

Simulation-based tests deliberately use small system sizes and workloads so
the whole suite stays fast; the benchmarks and example scripts are the place
for paper-scale runs.
"""

from __future__ import annotations

import pytest

from repro.common.rng import SeededRng
from repro.common.types import OwnershipMap
from repro.network.node import NetworkConfig


@pytest.fixture
def rng() -> SeededRng:
    """A deterministic RNG for tests that need randomness."""
    return SeededRng(1234)


@pytest.fixture
def two_accounts() -> OwnershipMap:
    """Two single-owner accounts: alice (process 0) and bob (process 1)."""
    return OwnershipMap.single_owner({"alice": 0, "bob": 1})


@pytest.fixture
def three_accounts() -> OwnershipMap:
    """Three single-owner accounts owned by processes 0, 1, 2."""
    return OwnershipMap.single_owner({"a": 0, "b": 1, "c": 2})


@pytest.fixture
def shared_account_map() -> OwnershipMap:
    """A 2-shared account plus a singleton account (sharing degree 2)."""
    return OwnershipMap({"joint": (0, 1), "solo": (2,)})


@pytest.fixture
def fast_network() -> NetworkConfig:
    """A low-latency, cheap-CPU network config that keeps tests snappy."""
    return NetworkConfig(
        latency_base=0.0002,
        latency_mean=0.0003,
        processing_time=0.000002,
        signature_verification_time=0.00002,
        seed=42,
    )
