"""Unit tests for the sequential object type formalism."""

import pytest

from repro.spec.object_type import ConsensusSpec, CounterSpec, RegisterSpec


class TestRegisterSpec:
    def test_read_returns_initial_value(self):
        spec = RegisterSpec(initial=7)
        transition = spec.apply(spec.initial_state(), 0, ("read",))
        assert transition.response == 7

    def test_write_then_read(self):
        spec = RegisterSpec()
        state = spec.initial_state()
        state = spec.apply(state, 0, ("write", "x")).new_state
        assert spec.apply(state, 1, ("read",)).response == "x"

    def test_unknown_operation_rejected(self):
        spec = RegisterSpec()
        with pytest.raises(ValueError):
            spec.apply(spec.initial_state(), 0, ("pop",))

    def test_malformed_operation_rejected(self):
        spec = RegisterSpec()
        with pytest.raises(TypeError):
            spec.apply(spec.initial_state(), 0, "read")

    def test_operation_names(self):
        assert set(RegisterSpec().operation_names()) >= {"read", "write"}


class TestCounterSpec:
    def test_increments_accumulate(self):
        spec = CounterSpec()
        state = spec.initial_state()
        for _ in range(3):
            state = spec.apply(state, 0, ("increment", 2)).new_state
        assert spec.apply(state, 1, ("read",)).response == 6

    def test_default_increment_is_one(self):
        spec = CounterSpec()
        state = spec.apply(spec.initial_state(), 0, ("increment",)).new_state
        assert spec.apply(state, 0, ("read",)).response == 1


class TestConsensusSpec:
    def test_first_proposal_wins(self):
        spec = ConsensusSpec()
        state = spec.initial_state()
        transition = spec.apply(state, 0, ("propose", "a"))
        assert transition.response == "a"
        assert spec.apply(transition.new_state, 1, ("propose", "b")).response == "a"

    def test_agreement_across_many_proposals(self):
        spec = ConsensusSpec()
        state = spec.initial_state()
        decisions = []
        for process, value in enumerate(["x", "y", "z"]):
            transition = spec.apply(state, process, ("propose", value))
            state = transition.new_state
            decisions.append(transition.response)
        assert decisions == ["x", "x", "x"]
