"""Unit tests for the asset-transfer sequential specification (Section 2.2)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import OwnershipMap
from repro.spec.asset_transfer_spec import AssetTransferSpec, read_op, transfer_op


@pytest.fixture
def spec(two_accounts):
    return AssetTransferSpec(two_accounts, {"alice": 10, "bob": 5})


class TestTransitions:
    def test_owner_with_funds_succeeds(self, spec):
        transition = spec.apply(spec.initial_state(), 0, transfer_op("alice", "bob", 4))
        assert transition.response is True
        assert spec.balance_in(transition.new_state, "alice") == 6
        assert spec.balance_in(transition.new_state, "bob") == 9

    def test_non_owner_fails_and_leaves_state(self, spec):
        state = spec.initial_state()
        transition = spec.apply(state, 1, transfer_op("alice", "bob", 4))
        assert transition.response is False
        assert transition.new_state == state

    def test_insufficient_balance_fails(self, spec):
        transition = spec.apply(spec.initial_state(), 0, transfer_op("alice", "bob", 11))
        assert transition.response is False

    def test_exact_balance_succeeds(self, spec):
        transition = spec.apply(spec.initial_state(), 0, transfer_op("alice", "bob", 10))
        assert transition.response is True
        assert spec.balance_in(transition.new_state, "alice") == 0

    def test_read_returns_balance_without_changing_state(self, spec):
        state = spec.initial_state()
        transition = spec.apply(state, 1, read_op("alice"))
        assert transition.response == 10
        assert transition.new_state == state

    def test_read_of_unknown_account_is_zero(self, spec):
        assert spec.apply(spec.initial_state(), 0, read_op("nobody")).response == 0

    def test_self_transfer_preserves_balance(self, spec):
        transition = spec.apply(spec.initial_state(), 0, transfer_op("alice", "alice", 3))
        assert transition.response is True
        assert spec.balance_in(transition.new_state, "alice") == 10


class TestSharedAccounts:
    def test_any_owner_of_shared_account_can_transfer(self, shared_account_map):
        spec = AssetTransferSpec(shared_account_map, {"joint": 10})
        for process in (0, 1):
            transition = spec.apply(spec.initial_state(), process, transfer_op("joint", "solo", 2))
            assert transition.response is True

    def test_sharing_degree_exposed(self, shared_account_map):
        spec = AssetTransferSpec(shared_account_map)
        assert spec.sharing_degree == 2


class TestReplayAndSupply:
    def test_replay_returns_states_and_responses(self, spec):
        final_state, responses = spec.replay(
            [
                (0, transfer_op("alice", "bob", 4)),
                (1, transfer_op("bob", "alice", 9)),
                (1, transfer_op("bob", "alice", 9)),
                (0, read_op("alice")),
            ]
        )
        assert responses == (True, True, False, 15)
        assert spec.balance_in(final_state, "bob") == 0

    def test_total_supply_is_invariant(self, spec):
        state, _ = spec.replay(
            [(0, transfer_op("alice", "bob", 3)), (1, transfer_op("bob", "alice", 7))]
        )
        assert spec.total_supply(state) == spec.total_supply()

    def test_unknown_initial_balance_account_rejected(self, two_accounts):
        with pytest.raises(ConfigurationError):
            AssetTransferSpec(two_accounts, {"zzz": 3})

    def test_negative_initial_balance_rejected(self, two_accounts):
        with pytest.raises(ConfigurationError):
            AssetTransferSpec(two_accounts, {"alice": -3})
