"""Unit tests for histories, completions and precedence (Section 2.1)."""

import pytest

from repro.common.errors import SpecificationViolation
from repro.spec.history import History, HistoryRecorder, OperationKind


def record_sequential(recorder, process, operation, response):
    operation_id = recorder.invoke(process, operation)
    recorder.respond(process, operation_id, response)
    return operation_id


class TestHistoryRecorder:
    def test_records_complete_operations(self):
        recorder = HistoryRecorder()
        record_sequential(recorder, 0, ("read", "a"), 5)
        history = recorder.history()
        assert len(history) == 1
        assert history.operations[0].response_value == 5

    def test_rejects_second_invocation_while_pending(self):
        recorder = HistoryRecorder()
        recorder.invoke(0, ("read", "a"))
        with pytest.raises(SpecificationViolation):
            recorder.invoke(0, ("read", "b"))

    def test_rejects_response_for_wrong_operation(self):
        recorder = HistoryRecorder()
        op = recorder.invoke(0, ("read", "a"))
        with pytest.raises(SpecificationViolation):
            recorder.respond(0, op + 99, 1)

    def test_interleaved_processes_allowed(self):
        recorder = HistoryRecorder()
        a = recorder.invoke(0, ("read", "a"))
        b = recorder.invoke(1, ("read", "b"))
        recorder.respond(1, b, 1)
        recorder.respond(0, a, 2)
        history = recorder.history()
        assert len(history) == 2
        assert history.is_complete()


class TestHistoryQueries:
    def test_projection_per_process(self):
        history = History.from_operations(
            [(0, ("read", "a"), 1), (1, ("read", "b"), 2), (0, ("read", "a"), 3)]
        )
        assert len(history.projection(0)) == 2
        assert len(history.projection(1)) == 1

    def test_processes_listed_sorted(self):
        history = History.from_operations([(2, ("read", "a"), 1), (0, ("read", "a"), 1)])
        assert history.processes == (0, 2)

    def test_sequential_history_has_total_precedence(self):
        history = History.from_operations([(0, ("read", "a"), 1), (1, ("read", "b"), 2)])
        assert (0, 1) in history.precedence_pairs()
        assert (1, 0) not in history.precedence_pairs()

    def test_overlapping_operations_are_unordered(self):
        recorder = HistoryRecorder()
        a = recorder.invoke(0, ("read", "a"))
        b = recorder.invoke(1, ("read", "b"))
        recorder.respond(0, a, 1)
        recorder.respond(1, b, 2)
        pairs = recorder.history().precedence_pairs()
        assert (a, b) not in pairs and (b, a) not in pairs

    def test_operation_kind_classification(self):
        history = History.from_operations(
            [(0, ("transfer", "a", "b", 1), True), (0, ("read", "a"), 4), (0, ("propose", 1), 1)]
        )
        kinds = [op.kind for op in history.operations]
        assert kinds == [OperationKind.TRANSFER, OperationKind.READ, OperationKind.PROPOSE]

    def test_program_order_respected_for_sequential_processes(self):
        history = History.from_operations([(0, ("read", "a"), 1), (0, ("read", "a"), 2)])
        assert history.respects_program_order()


class TestCompletions:
    def _incomplete_history(self):
        recorder = HistoryRecorder()
        done = recorder.invoke(0, ("transfer", "a", "b", 1))
        recorder.respond(0, done, True)
        pending = recorder.invoke(1, ("transfer", "b", "a", 1))
        return recorder.history(), pending

    def test_incomplete_operations_visible(self):
        history, pending = self._incomplete_history()
        assert [op.operation_id for op in history.incomplete_operations] == [pending]
        assert not history.is_complete()

    def test_completion_with_response(self):
        history, pending = self._incomplete_history()
        completed = history.complete_with({pending: True})
        assert completed.is_complete()
        assert completed.operations[-1].response_value is True

    def test_completion_by_removal(self):
        history, _pending = self._incomplete_history()
        completed = history.complete_with({})
        assert completed.is_complete()
        assert len(completed) == 1

    def test_restriction_and_filtering(self):
        history = History.from_operations(
            [(0, ("read", "a"), 1), (1, ("transfer", "a", "b", 1), False)]
        )
        reads = history.filter_operations(lambda op: op.kind is OperationKind.READ)
        assert len(reads) == 1

    def test_response_of_incomplete_operation_raises(self):
        history, pending = self._incomplete_history()
        target = [op for op in history.operations if op.operation_id == pending][0]
        with pytest.raises(SpecificationViolation):
            _ = target.response_value
