"""Unit tests for the linearizability checker."""

import pytest

from repro.common.types import OwnershipMap
from repro.spec.asset_transfer_spec import AssetTransferSpec, read_op, transfer_op
from repro.spec.history import History, HistoryRecorder
from repro.spec.linearizability import LinearizabilityChecker, assert_linearizable
from repro.spec.object_type import RegisterSpec


@pytest.fixture
def at_spec(two_accounts):
    return AssetTransferSpec(two_accounts, {"alice": 10, "bob": 0})


class TestSequentialHistories:
    def test_legal_sequential_history_accepted(self, at_spec):
        history = History.from_operations(
            [
                (0, transfer_op("alice", "bob", 4), True),
                (1, read_op("bob"), 4),
                (1, transfer_op("bob", "alice", 4), True),
            ]
        )
        assert LinearizabilityChecker(at_spec).check(history).linearizable

    def test_wrong_read_value_rejected(self, at_spec):
        history = History.from_operations(
            [(0, transfer_op("alice", "bob", 4), True), (1, read_op("bob"), 99)]
        )
        result = LinearizabilityChecker(at_spec).check(history)
        assert not result.linearizable

    def test_double_spend_rejected(self, at_spec):
        # Alice has 10 but two successful transfers of 10 are claimed.
        history = History.from_operations(
            [
                (0, transfer_op("alice", "bob", 10), True),
                (0, transfer_op("alice", "bob", 10), True),
            ]
        )
        assert not LinearizabilityChecker(at_spec).check(history).linearizable

    def test_fast_path_matches_full_checker(self, at_spec):
        history = History.from_operations(
            [(0, transfer_op("alice", "bob", 4), True), (1, read_op("bob"), 4)]
        )
        checker = LinearizabilityChecker(at_spec)
        assert checker.check_sequential(history).linearizable
        assert checker.check(history).linearizable

    def test_fast_path_reports_reason(self, at_spec):
        history = History.from_operations([(1, transfer_op("alice", "bob", 1), True)])
        result = LinearizabilityChecker(at_spec).check_sequential(history)
        assert not result.linearizable
        assert "specification requires" in result.reason


class TestConcurrentHistories:
    def test_overlapping_reads_may_reorder(self, at_spec):
        recorder = HistoryRecorder()
        # A read overlapping a transfer may return either the old or new value.
        t = recorder.invoke(0, transfer_op("alice", "bob", 4))
        r = recorder.invoke(1, read_op("bob"))
        recorder.respond(1, r, 0)        # read the pre-transfer value
        recorder.respond(0, t, True)
        assert LinearizabilityChecker(at_spec).check(recorder.history()).linearizable

    def test_read_after_completed_transfer_must_see_it(self, at_spec):
        recorder = HistoryRecorder()
        t = recorder.invoke(0, transfer_op("alice", "bob", 4))
        recorder.respond(0, t, True)
        r = recorder.invoke(1, read_op("bob"))
        recorder.respond(1, r, 0)        # stale read after the transfer returned
        assert not LinearizabilityChecker(at_spec).check(recorder.history()).linearizable

    def test_incomplete_transfer_may_take_effect(self, at_spec):
        recorder = HistoryRecorder()
        recorder.invoke(0, transfer_op("alice", "bob", 4))   # never responds (crash)
        r = recorder.invoke(1, read_op("bob"))
        recorder.respond(1, r, 4)                            # but its effect is visible
        assert LinearizabilityChecker(at_spec).check(recorder.history()).linearizable

    def test_incomplete_transfer_may_be_dropped(self, at_spec):
        recorder = HistoryRecorder()
        recorder.invoke(0, transfer_op("alice", "bob", 4))
        r = recorder.invoke(1, read_op("bob"))
        recorder.respond(1, r, 0)
        assert LinearizabilityChecker(at_spec).check(recorder.history()).linearizable

    def test_witness_is_a_legal_order(self, at_spec):
        recorder = HistoryRecorder()
        t = recorder.invoke(0, transfer_op("alice", "bob", 10))
        recorder.respond(0, t, True)
        u = recorder.invoke(1, transfer_op("bob", "alice", 10))
        recorder.respond(1, u, True)
        result = LinearizabilityChecker(at_spec).check(recorder.history())
        assert result.linearizable
        assert result.witness is not None and result.witness[0] == t


class TestRegisterHistories:
    def test_register_old_new_inversion_detected(self):
        spec = RegisterSpec(initial=0)
        recorder = HistoryRecorder()
        w = recorder.invoke(0, ("write", 1))
        recorder.respond(0, w, None)
        r1 = recorder.invoke(1, ("read",))
        recorder.respond(1, r1, 1)
        r2 = recorder.invoke(1, ("read",))
        recorder.respond(1, r2, 0)  # new-old inversion: illegal
        assert not LinearizabilityChecker(spec).check(recorder.history()).linearizable

    def test_assert_linearizable_raises_on_violation(self):
        spec = RegisterSpec(initial=0)
        history = History.from_operations([(0, ("read",), 42)])
        with pytest.raises(AssertionError):
            assert_linearizable(history, spec)

    def test_empty_history_is_linearizable(self):
        spec = RegisterSpec()
        assert LinearizabilityChecker(spec).check(History([])).linearizable

    def test_configuration_budget_guard(self, at_spec):
        history = History.from_operations(
            [(0, transfer_op("alice", "bob", 1), True) for _ in range(6)]
        )
        checker = LinearizabilityChecker(at_spec, max_configurations=2)
        with pytest.raises(RuntimeError):
            checker.check(history)
