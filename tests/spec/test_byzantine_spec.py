"""Unit tests for the Definition 1 checker (Section 5.1)."""

import pytest

from repro.common.types import Transfer
from repro.spec.byzantine_spec import (
    ByzantineAssetTransferChecker,
    ClientOperation,
    ProcessObservation,
    ValidatedTransfer,
)


def observation(process, transfers, operations=()):
    return ProcessObservation(
        process=process,
        validated=[ValidatedTransfer(transfer=t, position=i) for i, t in enumerate(transfers)],
        operations=list(operations),
    )


@pytest.fixture
def checker():
    return ByzantineAssetTransferChecker({"0": 10, "1": 10, "2": 10})


class TestAgreement:
    def test_consistent_views_pass(self, checker):
        t = Transfer("0", "1", 5, issuer=0, sequence=1)
        report = checker.check([observation(0, [t]), observation(1, [t])])
        assert report.ok
        assert report.checked_transfers == 2

    def test_conflicting_transfers_for_same_slot_detected(self, checker):
        t1 = Transfer("0", "1", 5, issuer=0, sequence=1)
        t2 = Transfer("0", "2", 5, issuer=0, sequence=1)
        report = checker.check([observation(1, [t1]), observation(2, [t2])])
        assert not report.ok
        assert any("C1" in violation for violation in report.violations)


class TestBalanceSafety:
    def test_overdraft_in_local_order_detected(self, checker):
        t = Transfer("0", "1", 50, issuer=0, sequence=1)
        report = checker.check([observation(1, [t])])
        assert not report.ok
        assert any("C2" in violation for violation in report.violations)

    def test_spending_received_funds_is_fine(self, checker):
        first = Transfer("0", "1", 10, issuer=0, sequence=1)
        second = Transfer("1", "2", 15, issuer=1, sequence=1)
        report = checker.check([observation(1, [first, second])])
        assert report.ok


class TestGlobalOrder:
    def test_dependency_cycle_detected(self, checker):
        # Two transfers each declaring the other as a dependency.
        t1 = Transfer("0", "1", 1, issuer=0, sequence=1)
        t2 = Transfer("1", "0", 1, issuer=1, sequence=1)
        obs = ProcessObservation(
            process=0,
            validated=[
                ValidatedTransfer(transfer=t1, dependencies=(t2.transfer_id,), position=0),
                ValidatedTransfer(transfer=t2, dependencies=(t1.transfer_id,), position=1),
            ],
        )
        report = checker.check([obs])
        assert not report.ok
        assert any("C3" in violation for violation in report.violations)

    def test_real_time_order_respected(self, checker):
        t1 = Transfer("0", "1", 5, issuer=0, sequence=1)
        t2 = Transfer("1", "2", 5, issuer=1, sequence=1)
        operations = [
            ClientOperation(process=0, kind="transfer", invoked_at=0.0, responded_at=1.0,
                            response=True, transfer=t1),
            ClientOperation(process=1, kind="transfer", invoked_at=2.0, responded_at=3.0,
                            response=True, transfer=t2),
        ]
        report = checker.check(
            [observation(0, [t1, t2], [operations[0]]), observation(1, [t1, t2], [operations[1]])]
        )
        assert report.ok


class TestLocalViews:
    def test_justified_read_accepted(self, checker):
        t = Transfer("0", "1", 4, issuer=0, sequence=1)
        read = ClientOperation(process=1, kind="read", invoked_at=0.0, responded_at=0.1,
                               response=14, account="1")
        report = checker.check([observation(1, [t], [read])])
        assert report.ok

    def test_stale_but_consistent_read_accepted(self, checker):
        t = Transfer("0", "1", 4, issuer=0, sequence=1)
        read = ClientOperation(process=1, kind="read", invoked_at=0.0, responded_at=0.1,
                               response=10, account="1")
        report = checker.check([observation(1, [t], [read])])
        assert report.ok

    def test_unjustifiable_read_detected(self, checker):
        read = ClientOperation(process=1, kind="read", invoked_at=0.0, responded_at=0.1,
                               response=999, account="1")
        report = checker.check([observation(1, [], [read])])
        assert not report.ok
        assert any("C4" in violation for violation in report.violations)

    def test_unjustified_failed_transfer_detected(self, checker):
        t = Transfer("1", "2", 3, issuer=1, sequence=1)
        failed = ClientOperation(process=1, kind="transfer", invoked_at=0.0, responded_at=0.1,
                                 response=False, transfer=t)
        report = checker.check([observation(1, [], [failed])])
        assert not report.ok

    def test_justified_failed_transfer_accepted(self, checker):
        t = Transfer("1", "2", 30, issuer=1, sequence=1)
        failed = ClientOperation(process=1, kind="transfer", invoked_at=0.0, responded_at=0.1,
                                 response=False, transfer=t)
        report = checker.check([observation(1, [], [failed])])
        assert report.ok

    def test_report_is_falsy_when_violations_exist(self, checker):
        t1 = Transfer("0", "1", 5, issuer=0, sequence=1)
        t2 = Transfer("0", "2", 5, issuer=0, sequence=1)
        report = checker.check([observation(1, [t1]), observation(2, [t2])])
        assert not bool(report)
