"""Unit tests for the canonical ClusterResult serialisation.

``ClusterResult.fingerprint`` is the backbone of the cross-backend
equivalence harness and the determinism regressions: it must be a *stable*
canonical form (same run, same bytes — across processes and interpreter
hash-randomisation), *complete* enough that any behavioural divergence
changes it, and *honest* — refusing to fingerprint a result that was never
captured, rather than comparing empty shells equal.
"""

import hashlib
import json

import pytest

from repro.cluster import ClusterResult, ClusterSystem
from repro.common.errors import ConfigurationError
from repro.workloads.cluster_driver import ClusterWorkloadConfig, cluster_open_loop_workload


def _run(fast_network, seed=5, backend=None):
    system = ClusterSystem(
        shard_count=2,
        replicas_per_shard=4,
        initial_balance=500,
        network_config=fast_network,
        backend=backend,
        seed=seed,
    )
    workload = cluster_open_loop_workload(
        ClusterWorkloadConfig(
            user_count=40,
            aggregate_rate=1_500.0,
            duration=0.015,
            cross_shard_fraction=0.5,
            router=system.router,
            seed=seed,
        )
    )
    system.schedule_submissions(workload)
    result = system.run()
    system.close()
    return result


class TestFingerprint:
    def test_same_seed_same_fingerprint(self, fast_network):
        assert _run(fast_network).fingerprint() == _run(fast_network).fingerprint()

    def test_different_seed_different_fingerprint(self, fast_network):
        assert _run(fast_network, seed=5).fingerprint() != _run(
            fast_network, seed=6
        ).fingerprint()

    def test_fingerprint_is_sha256_of_canonical_json(self, fast_network):
        """The hash covers the canonical payload *minus* the placement and
        volatile sections: the migration stream records where shards were
        computed, the telemetry section records how the run felt, and the
        fingerprint's contract is exactly that neither ever changes results
        (a migrated or traced run hashes equal to the static, untraced
        run)."""
        result = _run(fast_network)
        excluded = result.PLACEMENT_SECTIONS + result.VOLATILE_SECTIONS
        hashed = {
            key: value
            for key, value in result.fingerprint_payload().items()
            if key not in excluded
        }
        canonical = json.dumps(hashed, sort_keys=True, separators=(",", ":"))
        assert result.fingerprint() == hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        # The canonical form must actually be JSON-round-trippable (no sets,
        # no dataclasses, no non-string keys sneaking in) — the *full*
        # payload included, migration stream and all.
        full = json.dumps(result.fingerprint_payload(), sort_keys=True)
        assert json.loads(full) == json.loads(
            json.dumps(result.fingerprint_payload(), sort_keys=True)
        )

    def test_fingerprint_ignores_the_migration_stream(self, fast_network):
        """Placement metadata may never move the hash — that is the
        placement-invariance contract stated as a unit test."""
        result = _run(fast_network, backend="serial")
        before = result.fingerprint()
        assert result.migration_stream == []
        result.migration_stream = [(3, 0.015, 1, 0, 1)]
        assert result.fingerprint() == before
        assert result.fingerprint_payload()["migrations"] == [[3, 0.015, 1, 0, 1]]

    def test_payload_carries_every_advertised_section(self, fast_network):
        payload = _run(fast_network).fingerprint_payload()
        for section in (
            "balances",
            "committed",
            "settlement",
            "migrations",
            "audit",
            "duration",
            "events_processed",
            "messages_sent",
        ):
            assert section in payload
        assert payload["settlement"], "grid config must exercise settlement"
        assert payload["audit"]["conserved"] is True
        # Balances cover every replica of every shard, keyed canonically.
        assert set(payload["balances"]) == {"0", "1"}
        assert set(payload["balances"]["0"]) == {"0", "1", "2", "3"}

    def test_single_balance_change_changes_the_fingerprint(self, fast_network):
        result = _run(fast_network)
        before = result.fingerprint()
        account, amount = next(iter(result.balances["0"]["0"].items()))
        result.balances["0"]["0"][account] = amount + 1
        assert result.fingerprint() != before

    def test_settlement_stream_reordering_changes_the_fingerprint(self, fast_network):
        result = _run(fast_network)
        assert len(result.settlement_stream) >= 2
        before = result.fingerprint()
        result.settlement_stream.reverse()
        assert result.fingerprint() != before

    def test_uncaptured_result_refuses_to_fingerprint(self):
        with pytest.raises(ConfigurationError):
            ClusterResult().fingerprint()
        with pytest.raises(ConfigurationError):
            ClusterResult().fingerprint_payload()

    def test_epoch_and_shared_captures_use_the_same_schema(self, fast_network):
        shared = _run(fast_network, backend=None).fingerprint_payload()
        epoch = _run(fast_network, backend="serial").fingerprint_payload()
        assert set(shared) == set(epoch)
        # The shared clock has no per-shard event counters; the backends do.
        assert shared["per_shard_events"] is None
        assert len(epoch["per_shard_events"]) == 2
