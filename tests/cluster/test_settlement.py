"""Unit and integration tests for the cross-shard settlement fabric."""

import pytest

from repro.cluster import ClusterSystem
from repro.cluster.routing import parse_external_account
from repro.cluster.settlement import (
    SettlementClaim,
    SettlementConfig,
    SettlementRelay,
    SettlementVoucher,
    is_settlement_account,
    mint_transfer,
    settlement_account,
    settlement_issuer,
)
from repro.common.errors import ConfigurationError
from repro.crypto.signatures import SignatureScheme
from repro.network.simulator import Simulator
from repro.workloads.cluster_driver import (
    ClusterSubmission,
    ClusterWorkloadConfig,
    cluster_open_loop_workload,
)


def _workload(seed=5, rate=3_000.0, duration=0.03, users=400, **kwargs):
    return cluster_open_loop_workload(
        ClusterWorkloadConfig(
            user_count=users,
            aggregate_rate=rate,
            duration=duration,
            zipf_skew=1.0,
            seed=seed,
            **kwargs,
        )
    )


def _system(fast_network, shards=2, batch=1, seed=11, **kwargs):
    return ClusterSystem(
        shard_count=shards,
        replicas_per_shard=4,
        batch_size=batch,
        broadcast="bracha",
        network_config=fast_network,
        seed=seed,
        **kwargs,
    )


def _user_on_shard(router, shard, exclude=()):
    excluded = {(router.shard_of(u), router.local_account_of(u)) for u in exclude}
    for user in range(100_000):
        if router.shard_of(user) != shard:
            continue
        if (shard, router.local_account_of(user)) in excluded:
            continue
        return user
    raise AssertionError(f"no user found on shard {shard}")


class TestAccountNaming:
    def test_external_account_round_trips_through_parse(self):
        assert parse_external_account("x3:1") == (3, "1")
        assert parse_external_account("x10:alice") == (10, "alice")

    def test_parse_rejects_non_external_names(self):
        for name in ("0", "alice", "x", "x:", "x3", "xa:1", "x-1:0", "settle:1:0"):
            assert parse_external_account(name) is None, name

    def test_settlement_account_naming_and_classification(self):
        account = settlement_account(2, 3)
        assert account == "settle:2:3"
        assert is_settlement_account(account)
        assert not is_settlement_account("x2:3")
        assert not is_settlement_account("0")

    def test_settlement_issuers_are_negative_and_distinct(self):
        issuers = {
            settlement_issuer(shard, pid) for shard in range(8) for pid in range(16)
        }
        assert len(issuers) == 8 * 16
        assert all(issuer < 0 for issuer in issuers)

    def test_mint_transfer_carries_the_claim(self):
        claim = SettlementClaim(
            source_shard=0, destination_shard=1, issuer=2, sequence=4, account="3", amount=7
        )
        transfer = mint_transfer(claim)
        assert transfer.source == settlement_account(0, 2)
        assert transfer.destination == "3"
        assert transfer.amount == 7
        assert transfer.sequence == 4
        assert transfer.issuer == settlement_issuer(0, 2)


class TestSettlementRelay:
    def _relay(self, quorum=3):
        simulator = Simulator()
        scheme = SignatureScheme(seed=7)
        relay = SettlementRelay(
            source_shard=0,
            destination_shard=1,
            simulator=simulator,
            scheme=scheme,
            quorum_size=quorum,
            allowed_signers=frozenset(range(4)),
            config=SettlementConfig(),
        )
        return relay, simulator, scheme

    def _voucher(self, scheme, signer, claim):
        return SettlementVoucher(claim=claim, signature=scheme.keypair_for(signer).sign(claim))

    def _claim(self, sequence=1, amount=5):
        return SettlementClaim(
            source_shard=0, destination_shard=1, issuer=0, sequence=sequence,
            account="2", amount=amount,
        )

    def test_certificate_assembles_exactly_at_quorum(self):
        relay, simulator, scheme = self._relay()
        claim = self._claim()
        delivered = []
        relay.subscribe(delivered.append)
        for signer in (0, 1):
            assert relay.submit_voucher(self._voucher(scheme, signer, claim))
        assert not relay.certificates and relay.pending_claims == 1
        assert relay.submit_voucher(self._voucher(scheme, 2, claim))
        assert len(relay.certificates) == 1
        assert relay.pending_claims == 0
        simulator.run_until_quiescent()
        assert [c.claim for c in delivered] == [claim]
        assert relay.delivered == relay.certificates

    def test_late_and_duplicate_vouchers_are_noops(self):
        relay, simulator, scheme = self._relay()
        claim = self._claim()
        for signer in (0, 0, 1, 2):  # duplicate signer does not count twice
            relay.submit_voucher(self._voucher(scheme, signer, claim))
        assert len(relay.certificates) == 1
        relay.submit_voucher(self._voucher(scheme, 3, claim))  # late
        assert len(relay.certificates) == 1

    def test_rejects_foreign_pairs_signers_and_bad_signatures(self):
        relay, simulator, scheme = self._relay()
        claim = self._claim()
        wrong_pair = SettlementClaim(
            source_shard=1, destination_shard=0, issuer=0, sequence=1, account="2", amount=5
        )
        assert not relay.submit_voucher(self._voucher(scheme, 0, wrong_pair))
        assert not relay.submit_voucher(self._voucher(scheme, 9, claim))  # not a replica
        rogue = SignatureScheme(seed=999)
        assert not relay.submit_voucher(self._voucher(rogue, 0, claim))
        assert relay.vouchers_rejected == 3
        assert relay.vouchers_accepted == 0

    def test_rejects_degenerate_configuration(self):
        simulator = Simulator()
        with pytest.raises(ConfigurationError):
            SettlementRelay(0, 1, simulator, SignatureScheme(), 0, frozenset())
        with pytest.raises(ConfigurationError):
            SettlementConfig(voucher_delay=-1.0).validate()


class TestSettlementEndToEnd:
    def test_cross_shard_credit_is_minted_at_every_destination_replica(self, fast_network):
        system = _system(fast_network)
        a = _user_on_shard(system.router, 0)
        b = _user_on_shard(system.router, 1)
        system.schedule_submissions(
            [ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=9)]
        )
        system.run()
        b_account = system.router.local_account_of(b)
        initial = system.shards[1].initial_balances()[b_account]
        for node in system.shards[1].nodes.values():
            assert node.balance_of(b_account) == initial + 9
        # The provision account runs negative at the destination by the
        # minted amount; the source's outbound record, fully acknowledged by
        # quiescence, has been retired behind the compaction watermark.
        audit = system.supply_audit()
        assert audit.minted == 9
        assert audit.retired == 9
        assert audit.outbound == 0
        assert audit.fully_settled
        assert audit.fully_retired

    def test_minted_funds_are_spendable_beyond_initial_balance(self, fast_network):
        system = _system(fast_network, initial_balance=10, seed=3)
        a = _user_on_shard(system.router, 0)
        b = _user_on_shard(system.router, 1)
        c = _user_on_shard(system.router, 1, exclude=(b,))
        system.schedule_submissions(
            [
                ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=9),
                # 15 > B's initial 10: only spendable thanks to the mint.
                ClusterSubmission(time=0.05, source_user=b, destination_user=c, amount=15),
            ]
        )
        result = system.run()
        assert result.committed_count == 2
        assert not result.rejected
        report = system.check_definition1()
        assert report.ok, report.violations

    def test_without_settlement_the_credit_stays_parked(self, fast_network):
        """The negative control: PR 1 behaviour is preserved behind the flag."""
        system = _system(fast_network, initial_balance=10, seed=3, settlement=False)
        a = _user_on_shard(system.router, 0)
        b = _user_on_shard(system.router, 1)
        c = _user_on_shard(system.router, 1, exclude=(b,))
        system.schedule_submissions(
            [
                ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=9),
                ClusterSubmission(time=0.05, source_user=b, destination_user=c, amount=15),
            ]
        )
        result = system.run()
        assert result.committed_count == 1  # the 15-unit spend fails: no mint
        audit = system.supply_audit()
        assert audit.minted == 0
        assert audit.in_flight == 9
        assert not audit.fully_settled
        assert audit.conserved  # the identity holds even unsettled
        assert system.settlement_signature() == []


class TestSupplyAccountingIdentity:
    """The two-ledger accounting identity, asserted rather than prosed.

    ``local + outbound - (minted - retired) == initial_supply`` at every
    instant: mid-flight (outbound credits validated, certificates not yet
    delivered), at quiescence (everything minted, acknowledged and retired,
    in-flight zero), and with settlement disabled (nothing ever minted).
    ``ClusterSystem.total_supply`` sums the same ledgers directly, so it must
    agree with the audit's total at all three points.
    """

    def test_identity_holds_mid_flight_and_at_quiescence(self, fast_network):
        initial = 5_000
        system = _system(fast_network, shards=3, initial_balance=initial)
        system.schedule_submissions(_workload())
        expected = 3 * 4 * initial

        # Stop early: commits have happened but settlement is still in flight
        # for at least some credits (the delivery leg alone takes 2 ms).
        system.run(until=0.004)
        mid = system.supply_audit()
        assert mid.total == expected
        assert system.total_supply() == expected

        system.run()
        audit = system.supply_audit()
        assert audit.total == expected
        assert audit.conserved and audit.ledger_matches_relay
        assert audit.retirement_backed
        assert audit.fully_settled
        assert audit.local == expected  # all money is spendable again
        # The full lifecycle completed: everything minted was acknowledged
        # and its outbound record retired, so the ledgers carry no
        # settlement history at all.
        assert audit.minted == audit.relay_delivered == audit.retired
        assert audit.minted > 0  # the workload did cross shards
        assert audit.outbound == 0
        assert audit.fully_retired
        assert system.resident_settlement_records() == 0
        assert system.retired_records() > 0
        assert system.total_supply() == expected

    def test_audit_matches_relay_bookkeeping(self, fast_network):
        system = _system(fast_network, shards=2)
        system.schedule_submissions(_workload())
        system.run()
        audit = system.supply_audit()
        fabric = system.settlement
        assert audit.relay_delivered == fabric.delivered_amount() == fabric.certified_amount()
        assert fabric.pending_claims() == 0
        assert fabric.certificates_delivered() == len(system.settlement_signature())
        assert fabric.settlement_messages() > 0

    def test_check_definition1_carries_the_conservation_verdict(self, fast_network):
        system = _system(fast_network, shards=2)
        system.schedule_submissions(_workload())
        system.run()
        report = system.check_definition1()
        assert report.ok, report.violations
        assert report.conservation is not None
        assert report.conservation.ok
        assert not report.conservation.violations
        assert bool(report)


class TestWorkloadCrossShardFraction:
    def test_fraction_one_makes_every_payment_cross_shard(self, fast_network):
        system = _system(fast_network, shards=2, seed=11)
        workload = _workload(cross_shard_fraction=1.0, router=system.router)
        scheduled = system.schedule_submissions(workload)
        assert scheduled == len(workload) > 0
        assert system.cross_shard_submissions == scheduled

    def test_fraction_zero_keeps_every_payment_local(self, fast_network):
        system = _system(fast_network, shards=2, seed=11)
        workload = _workload(cross_shard_fraction=0.0, router=system.router)
        system.schedule_submissions(workload)
        assert system.cross_shard_submissions == 0

    def test_intermediate_fraction_is_roughly_realised(self, fast_network):
        system = _system(fast_network, shards=4, seed=11)
        workload = _workload(
            cross_shard_fraction=0.5, router=system.router, rate=6_000.0
        )
        system.schedule_submissions(workload)
        realised = system.cross_shard_submissions / len(workload)
        assert 0.3 < realised < 0.7

    def test_single_shard_cross_draw_degrades_gracefully(self):
        from repro.cluster.routing import ShardRouter

        workload = _workload(
            cross_shard_fraction=1.0, router=ShardRouter(1, 4, salt=11), users=50
        )
        assert workload  # nothing to cross into: the knob is best-effort

    def test_fraction_requires_a_router(self):
        with pytest.raises(ConfigurationError):
            _workload(cross_shard_fraction=0.5)
        with pytest.raises(ConfigurationError):
            from repro.cluster.routing import ShardRouter

            _workload(cross_shard_fraction=1.5, router=ShardRouter(2, 4))
