"""Live shard migration: the placement-invariance equivalence harness.

The migration layer's headline guarantee extends the backends' one: not only
may parallelism never change protocol behaviour — *placement* may not
either.  For every configuration in the grid below (seed × cross-shard
fraction × hotspot, each under a shifting-hotspot workload), the run is
executed under three migration schedules — none, a manual
:class:`MigrationPlan`, a :class:`ThresholdMigrationPolicy` — on all three
execution backends, and every one of the nine runs must produce the *same*
:meth:`ClusterResult.fingerprint` (placement sections excluded from the hash
by contract).  On top, payload-level equality across backends under the same
schedule pins the migration *decisions* themselves as backend-invariant: the
recorded migration stream — which barrier, which shard, which worker — is
part of the compared payload.

Below the harness sit the units: the mutable :class:`PlacementPlan`, the
manual and threshold policies, the greedy :func:`rebalance_moves` balancer,
``ClusterSystem.rebalance()`` mid-run, and the process-pool worker's
``evict``/``adopt`` commands driven in-process through a scripted pipe.
"""

import pickle

import pytest

from repro.cluster import codec as pipe_codec
from repro.cluster import ClusterSystem, ShardSpec
from repro.cluster.backends import BACKEND_NAMES, _replay_shard, _worker_main
from repro.cluster.migration import (
    MigrationPlan,
    MigrationRecord,
    Move,
    PlacementPlan,
    ShardLoad,
    ThresholdMigrationPolicy,
    normalize_migration,
    rebalance_moves,
)
from repro.common.errors import ConfigurationError
from repro.workloads.cluster_driver import (
    ClusterWorkloadConfig,
    HotspotProfile,
    RoutedSubmission,
    cluster_open_loop_workload,
)

# The placement-invariance grid: every config runs under {static, manual,
# threshold} × {serial, thread, process} — nine runs per config, one
# fingerprint.  ≥ 8 configs including hotspot-driven threshold moves.
SHARDS = 3
WORKERS = 2
GRID = [
    # (seed, cross_shard_fraction, hotspot?)
    (3, 0.5, False),
    (3, 0.5, True),
    (3, 1.0, True),
    (11, 0.5, True),
    (11, 1.0, False),
    (11, 1.0, True),
    (17, 0.7, True),
    (23, 0.7, True),
]

SCHEDULES = ("static", "manual", "threshold")


def _migration_for(schedule):
    if schedule == "static":
        return None
    if schedule == "manual":
        # Three explicit moves spread across the run — including one that
        # bounces a shard back, so a shard migrates twice.
        return MigrationPlan([(0.005, 0, 1), (0.01, 1, 0), (0.016, 0, 0)])
    # Aggressive thresholds so the small harness workloads trigger real
    # moves under the shifting hotspot.
    return ThresholdMigrationPolicy(
        imbalance_threshold=1.05, every=2, cooldown=1, max_moves=1
    )


def _run(fast_network, backend, seed, fraction, hotspot, schedule):
    system = ClusterSystem(
        shard_count=SHARDS,
        replicas_per_shard=4,
        batch_size=2,
        initial_balance=500,
        network_config=fast_network,
        backend=backend,
        max_workers=WORKERS,
        migration=_migration_for(schedule),
        seed=seed,
    )
    workload = cluster_open_loop_workload(
        ClusterWorkloadConfig(
            user_count=60,
            aggregate_rate=1_500.0,
            duration=0.02,
            zipf_skew=1.0,
            cross_shard_fraction=fraction,
            hotspot=(
                HotspotProfile(period=0.007, intensity=0.8, width=4) if hotspot else None
            ),
            router=system.router,
            seed=seed,
        )
    )
    system.schedule_submissions(workload)
    result = system.run()
    return system, result


class TestPlacementInvariance:
    """Any migration schedule, any backend — one fingerprint."""

    @pytest.mark.parametrize("seed,fraction,hotspot", GRID)
    def test_fingerprints_identical_across_schedules_and_backends(
        self, fast_network, seed, fraction, hotspot
    ):
        fingerprints = {}
        payloads = {}
        streams = {}
        for schedule in SCHEDULES:
            for backend in BACKEND_NAMES:
                system, result = _run(
                    fast_network, backend, seed, fraction, hotspot, schedule
                )
                try:
                    fingerprints[(schedule, backend)] = result.fingerprint()
                    payloads[(schedule, backend)] = result.comparable_payload()
                    streams[(schedule, backend)] = result.migration_stream
                    report = system.check_definition1()
                    assert report.ok, (schedule, backend, report.violations)
                    assert result.audit["conserved"], (schedule, backend)
                    assert result.audit["fully_settled"], (schedule, backend)
                finally:
                    system.close()
        # One fingerprint across all nine runs: results are placement-
        # invariant, whatever the schedule and wherever the shards ran.
        assert len(set(fingerprints.values())) == 1, fingerprints
        for schedule in SCHEDULES:
            # Migration *decisions* are backend-invariant: same schedule,
            # same payload — the recorded migration stream included.
            assert (
                payloads[(schedule, "serial")]
                == payloads[(schedule, "thread")]
                == payloads[(schedule, "process")]
            )
        # The grid must not pass vacuously: the manual plan always moves,
        # and the static run never does.
        assert streams[("static", "serial")] == []
        assert len(streams[("manual", "serial")]) == 3

    def test_threshold_policy_moves_under_the_hotspot(self, fast_network):
        """The threshold schedule must execute real moves somewhere on the
        hotspot grid — placement invariance proven over actual migrations,
        not over a policy that never fired."""
        moved = 0
        for seed, fraction, hotspot in GRID:
            if not hotspot:
                continue
            system, result = _run(
                fast_network, "serial", seed, fraction, hotspot, "threshold"
            )
            try:
                moved += len(result.migration_stream)
            finally:
                system.close()
        assert moved > 0

    def test_migrated_process_pool_run_exercises_real_state_transfer(
        self, fast_network
    ):
        """Belt and braces for the process backend: the manual schedule on a
        two-worker pool really evicts/adopts across process boundaries (the
        recorded moves cross worker slots) and still equals the static
        serial reference."""
        reference_system, reference = _run(
            fast_network, "serial", 11, 1.0, True, "static"
        )
        migrated_system, migrated = _run(
            fast_network, "process", 11, 1.0, True, "manual"
        )
        try:
            assert migrated.fingerprint() == reference.fingerprint()
            assert migrated.migration_stream
            assert all(
                entry[3] != entry[4] for entry in migrated.migration_stream
            )  # every recorded move crossed worker slots
        finally:
            reference_system.close()
            migrated_system.close()


class TestRebalance:
    def _system(self, fast_network, migration="manual", backend="serial", seed=7):
        system = ClusterSystem(
            shard_count=4,
            replicas_per_shard=4,
            initial_balance=500,
            network_config=fast_network,
            backend=backend,
            max_workers=2,
            migration=migration,
            seed=seed,
        )
        workload = cluster_open_loop_workload(
            ClusterWorkloadConfig(
                user_count=80,
                aggregate_rate=1_500.0,
                duration=0.02,
                cross_shard_fraction=0.5,
                router=system.router,
                seed=seed,
            )
        )
        system.schedule_submissions(workload)
        return system

    def test_mid_run_rebalance_levels_loads_and_keeps_the_fingerprint(
        self, fast_network
    ):
        static = self._system(fast_network, migration=None)
        reference = static.run().fingerprint()
        static.close()
        live = self._system(fast_network)
        try:
            live.run(until=0.01)
            before = live.worker_loads()
            records = live.rebalance()
            after = live.worker_loads()
            assert records, "the skewed default assignment must yield moves"
            for record in records:
                assert isinstance(record, MigrationRecord)
                assert record.snapshot_bytes > 0
                assert record.source_worker != record.target_worker
            # The greedy balancer strictly lowers the peak worker load.
            assert max(after.values()) < max(before.values())
            result = live.run()
            assert result.fingerprint() == reference
            assert len(result.migration_stream) == len(records)
            assert live.check_definition1().ok
        finally:
            live.close()

    def test_rebalance_with_explicit_moves_and_tuples(self, fast_network):
        live = self._system(fast_network, backend="process")
        try:
            live.run(until=0.01)
            records = live.rebalance(moves=[(0, 1), Move(shard=1, worker=0)])
            moved = {(r.shard, r.target_worker) for r in records}
            assert moved == {(0, 1), (1, 0)}
            assert live.placement.worker_of(0) == 1
            assert live.placement.worker_of(1) == 0
            result = live.run()
            static = self._system(fast_network, migration=None)
            assert result.fingerprint() == static.run().fingerprint()
            static.close()
        finally:
            live.close()

    def test_rebalance_before_the_first_run_edits_the_placement_for_free(
        self, fast_network
    ):
        live = self._system(fast_network)
        try:
            assert live.rebalance(moves=[(0, 1)]) == []  # nothing ran yet
            assert live.placement.worker_of(0) == 1
            result = live.run()
            assert result.migration_stream == []  # an edit, not a migration
            static = self._system(fast_network, migration=None)
            assert result.fingerprint() == static.run().fingerprint()
            static.close()
        finally:
            live.close()

    def test_rebalance_of_balanced_loads_is_a_noop(self, fast_network):
        live = self._system(fast_network)
        try:
            live.run(until=0.01)
            live.rebalance()
            assert live.rebalance() == []  # already balanced: nothing moves
        finally:
            live.close()

    def test_out_of_range_move_fails_cleanly_before_any_state_changes(
        self, fast_network
    ):
        """An out-of-range target worker must be rejected *before* the shard
        leaves its old worker — on the process pool a post-evict failure
        would strand the shard nowhere.  After the rejection the session is
        intact: the run completes and still matches the static reference."""
        for backend in ("serial", "process"):
            live = self._system(fast_network, backend=backend)
            try:
                live.run(until=0.01)
                with pytest.raises(ConfigurationError):
                    live.rebalance(moves=[(0, 9)])  # only workers 0 and 1 exist
                result = live.run()
                assert result.migration_stream == []
                static = self._system(fast_network, migration=None)
                assert result.fingerprint() == static.run().fingerprint()
                static.close()
            finally:
                live.close()

    def test_rebalance_requires_migration_enabled(self, fast_network):
        static = self._system(fast_network, migration=None)
        try:
            with pytest.raises(ConfigurationError):
                static.rebalance()
        finally:
            static.close()

    def test_migration_rejected_on_the_shared_clock(self, fast_network):
        with pytest.raises(ConfigurationError):
            ClusterSystem(
                shard_count=2, network_config=fast_network, migration="manual"
            )

    def test_unknown_migration_knob_rejected(self, fast_network):
        with pytest.raises(ConfigurationError):
            ClusterSystem(
                shard_count=2,
                network_config=fast_network,
                backend="serial",
                migration="sometimes",
            )
        assert normalize_migration("off") == (False, None)
        assert normalize_migration("manual") == (True, None)


class TestPlacementPlan:
    def test_round_robin_default(self):
        plan = PlacementPlan(5, 2)
        assert plan.as_dict() == {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}
        assert plan.shards_on(0) == [0, 2, 4]
        assert plan.worker_of(3) == 1

    def test_move_updates_and_counts(self):
        plan = PlacementPlan(3, 2)
        assert plan.move(0, 1) == 0
        assert plan.worker_of(0) == 1
        assert plan.moves_applied == 1
        assert plan.move(0, 1) == 1  # no-op move: previous worker returned
        assert plan.moves_applied == 1

    def test_worker_loads_cover_empty_slots(self):
        plan = PlacementPlan(2, 3)
        loads = plan.worker_loads({0: ShardLoad(events=10), 1: ShardLoad(events=4)})
        assert loads == {0: 10, 1: 4, 2: 0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlacementPlan(0, 1)
        with pytest.raises(ConfigurationError):
            PlacementPlan(2, 0)
        with pytest.raises(ConfigurationError):
            PlacementPlan(2, 2, {0: 0})  # shard 1 unassigned
        with pytest.raises(ConfigurationError):
            PlacementPlan(2, 2, {0: 0, 1: 5})  # worker out of range
        plan = PlacementPlan(2, 2)
        with pytest.raises(ConfigurationError):
            plan.move(7, 0)
        with pytest.raises(ConfigurationError):
            plan.move(0, 9)


class TestMigrationPolicies:
    def _loads(self, *events):
        return {shard: ShardLoad(events=count) for shard, count in enumerate(events)}

    def test_manual_plan_fires_at_or_after_its_time_once(self):
        plan = MigrationPlan([(0.01, 0, 1), (0.02, 1, 0)])
        placement = PlacementPlan(2, 2)
        assert plan.decide(1, 0.005, placement, {}) == []
        assert plan.decide(2, 0.012, placement, {}) == [Move(shard=0, worker=1)]
        assert plan.pending_moves == 1
        # Barrier past both times: the remaining move fires, nothing repeats.
        assert plan.decide(3, 0.05, placement, {}) == [Move(shard=1, worker=0)]
        assert plan.decide(4, 0.06, placement, {}) == []

    def test_manual_plan_rejects_negative_times(self):
        with pytest.raises(ConfigurationError):
            MigrationPlan([(-0.1, 0, 1)])

    def test_threshold_policy_moves_the_hottest_shard_that_fits(self):
        policy = ThresholdMigrationPolicy(
            imbalance_threshold=1.2, every=2, cooldown=0, max_moves=1
        )
        placement = PlacementPlan(3, 2)  # worker 0: shards 0, 2; worker 1: shard 1
        assert policy.decide(0, 0.0, placement, self._loads(0, 0, 0)) == []
        # Worker 0 is hot because of shard 0 — but landing shard 0 on
        # worker 1 would just move the peak (1000 + 100 > 1050), so the
        # policy moves the cooler shard 2 off the hot worker instead.
        moves = policy.decide(2, 0.01, placement, self._loads(1_000, 100, 50))
        assert moves == [Move(shard=2, worker=1)]
        # When the hottest shard *does* fit, it is the one that moves.
        fresh = ThresholdMigrationPolicy(
            imbalance_threshold=1.2, every=2, cooldown=0, max_moves=1
        )
        fresh.decide(0, 0.0, placement, self._loads(0, 0, 0))
        moves = fresh.decide(2, 0.01, PlacementPlan(3, 2), self._loads(400, 10, 300))
        assert moves == [Move(shard=0, worker=1)]

    def test_threshold_policy_respects_every_and_cooldown(self):
        policy = ThresholdMigrationPolicy(
            imbalance_threshold=1.2, every=2, cooldown=4, max_moves=1
        )
        placement = PlacementPlan(3, 2)
        assert policy.decide(1, 0.0, placement, self._loads(1_000, 10, 10)) == []
        moves = policy.decide(2, 0.0, placement, self._loads(2_000, 20, 20))
        assert len(moves) == 1
        placement.move(moves[0].shard, moves[0].worker)
        # Next evaluation inside the cooldown window: the shard stays put
        # even though the (stale) imbalance would justify bouncing it back.
        assert policy.decide(4, 0.0, placement, self._loads(2_100, 2_000, 30)) == []

    def test_threshold_policy_never_moves_an_unsplittable_worker(self):
        policy = ThresholdMigrationPolicy(imbalance_threshold=1.1, every=1, cooldown=0)
        placement = PlacementPlan(2, 2)  # one shard per worker
        policy.decide(1, 0.0, placement, self._loads(10, 10))
        # One worker is hot, but it hosts a single shard: moving it cannot
        # reduce the peak, so the policy stays put.
        assert policy.decide(2, 0.0, placement, self._loads(5_000, 20)) == []

    def test_threshold_decisions_are_deterministic(self):
        def run_policy():
            policy = ThresholdMigrationPolicy(
                imbalance_threshold=1.1, every=2, cooldown=1
            )
            placement = PlacementPlan(3, 2)
            decisions = []
            for barrier in range(8):
                loads = self._loads(
                    100 * (barrier + 1) ** 2, 40 * (barrier + 1), 30 * (barrier + 1)
                )
                moves = policy.decide(barrier, barrier * 0.01, placement, loads)
                for move in moves:
                    placement.move(move.shard, move.worker)
                decisions.append(tuple(moves))
            return decisions

        assert run_policy() == run_policy()

    def test_policy_validation(self):
        for bad in (
            dict(imbalance_threshold=1.0),
            dict(every=0),
            dict(cooldown=-1),
            dict(max_moves=0),
            dict(settlement_weight=-1),
        ):
            with pytest.raises(ConfigurationError):
                ThresholdMigrationPolicy(**bad)

    def test_rebalance_moves_levels_a_skewed_assignment(self):
        placement = PlacementPlan(4, 2, {0: 0, 1: 0, 2: 0, 3: 0})
        loads = self._loads(100, 80, 60, 40)
        moves = rebalance_moves(placement, loads)
        assert moves
        for move in moves:
            placement.move(move.shard, move.worker)
        worker_loads = placement.worker_loads(loads)
        assert max(worker_loads.values()) < 280  # strictly below the all-on-one peak

    def test_rebalance_moves_noop_when_balanced(self):
        placement = PlacementPlan(2, 2)
        assert rebalance_moves(placement, self._loads(50, 50)) == []


class _ScriptedPipe:
    """An in-process stand-in for one end of a worker pipe."""

    def __init__(self, commands):
        self._commands = list(commands)
        self.responses = []
        self.closed = False

    def recv_bytes(self):
        if not self._commands:
            raise EOFError
        # The real pipe carries codec frames; scripted commands round-trip
        # through the same encoder the driver uses.
        return pipe_codec.encode(self._commands.pop(0))

    def send_bytes(self, payload):
        self.responses.append(pipe_codec.decode(payload))

    def close(self):
        self.closed = True


class TestWorkerMigrationLoop:
    """Drive evict/adopt in-process: the subprocess code path, unit-tested."""

    def _spec(self, fast_network, index=0):
        return ShardSpec(
            index=index, replicas=4, initial_balance=100,
            network_config=fast_network, seed=5,
        )

    def test_evict_detaches_and_returns_the_snapshot(self, fast_network):
        spec = self._spec(fast_network)
        submissions = {0: [RoutedSubmission(time=0.001, issuer=0, destination="1", amount=7)]}
        pipe = _ScriptedPipe(
            [
                ("advance", 0.05, None),
                ("evict", [0]),
                ("advance", 0.06, None),  # shard gone: empty report set
                ("stop",),
            ]
        )
        _worker_main(pipe, [spec], submissions)
        statuses = [status for status, _ in pipe.responses]
        assert statuses == ["ok", "ok", "ok", "ok"]
        snapshot = pipe.responses[1][1][0]
        assert len(snapshot.committed) == 1
        assert pipe.responses[2][1] == {}  # the worker no longer owns shard 0

    def test_adopt_replays_to_the_evicted_state(self, fast_network):
        """The full migration hop, in miniature: worker A advances and
        evicts; worker B adopts by replay; the snapshots agree exactly."""
        spec = self._spec(fast_network)
        routed = [RoutedSubmission(time=0.001, issuer=0, destination="1", amount=7)]
        source = _ScriptedPipe([("advance", 0.05, None), ("evict", [0]), ("stop",)])
        _worker_main(source, [spec], {0: routed})
        evicted = source.responses[1][1][0]
        target = _ScriptedPipe([("adopt", [(spec, routed, None, [], 0.05)]), ("stop",)])
        _worker_main(target, [], {})
        adopted = target.responses[0][1][0]
        assert adopted == evicted
        assert pickle.loads(pickle.dumps(adopted)) == evicted

    def test_replay_interleaves_command_history(self, fast_network):
        """A mint in the shard's history replays at its original barrier
        time: the adopted shard carries the credited balance."""
        from repro.cluster.settlement import settlement_account, settlement_issuer
        from repro.common.types import Transfer

        spec = self._spec(fast_network)
        routed = [RoutedSubmission(time=0.001, issuer=0, destination="1", amount=7)]
        mint = Transfer(
            source=settlement_account(1, 0), destination="2", amount=9,
            issuer=settlement_issuer(1, 0), sequence=1,
        )
        mints = [(pid, mint) for pid in range(4)]
        # The original timeline: advance to the barrier, mint, advance on.
        original = spec.build()
        original.install_validation_collector()
        original.start()
        for submission in routed:
            original.submit(
                time=submission.time, issuer=submission.issuer,
                destination=submission.destination, amount=submission.amount,
            )
        original.advance(0.02)
        original.apply_mints(0.02, mints)
        original.advance(0.05)
        replayed = _replay_shard(spec, routed, [("mint", 0.02, mints)], 0.05)
        assert replayed.snapshot() == original.snapshot()
        initial = original.initial_balances()["2"]
        assert replayed.nodes[0].balance_of("2") == initial + 9

    def test_migrate_refuses_without_a_placement_plan(self, fast_network):
        """A backend session opened with no placement has nothing to move
        against — migrating it is a wiring bug, reported as such."""
        from repro.cluster.backends import SerialBackend

        backend = SerialBackend()
        backend.open([], [], {})  # no placement
        with pytest.raises(ConfigurationError):
            backend.migrate(0, 0.0, [Move(shard=0, worker=1)])

    def test_migrate_refuses_without_history(self, fast_network):
        """A process session opened without migration history cannot
        migrate: the replay inputs were never recorded."""
        from repro.cluster.backends import ProcessPoolBackend

        backend = ProcessPoolBackend(max_workers=2)
        system = ClusterSystem(
            shard_count=2, network_config=fast_network, backend="process",
            max_workers=2, seed=3,
        )
        try:
            system.run()  # opens the session with record_history=False
            with pytest.raises(ConfigurationError):
                system._backend.migrate(0, 0.0, [Move(shard=0, worker=1)])
        finally:
            system.close()
            backend.close()
