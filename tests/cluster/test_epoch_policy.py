"""The EpochPolicy seam: fixed and adaptive barrier grids.

Policy units (clamping, widening/narrowing thresholds, validation), the
scheduler integration (adaptive grids change the barrier schedule but never
the audited outcome), determinism (same seed, same adaptive barrier
sequence) and pause/resume equality under an adaptive grid.
"""

import pytest

from repro.cluster import AdaptiveEpochPolicy, ClusterSystem, FixedEpochPolicy
from repro.cluster.backends import EpochScheduler
from repro.common.errors import ConfigurationError
from repro.workloads.cluster_driver import (
    ClusterWorkloadConfig,
    cluster_open_loop_workload,
)


def _build(fast_network, policy=None, seed=3, **kwargs):
    system = ClusterSystem(
        shard_count=2,
        replicas_per_shard=4,
        initial_balance=500,
        network_config=fast_network,
        backend="serial",
        epoch_policy=policy,
        seed=seed,
        **kwargs,
    )
    workload = cluster_open_loop_workload(
        ClusterWorkloadConfig(
            user_count=60,
            aggregate_rate=1_500.0,
            duration=0.02,
            cross_shard_fraction=1.0,
            router=system.router,
            seed=seed,
        )
    )
    system.schedule_submissions(workload)
    return system


class TestFixedEpochPolicy:
    def test_constant_width(self):
        policy = FixedEpochPolicy(0.005)
        assert policy.initial_epoch() == 0.005
        assert policy.next_epoch(0, 0.005, 0) == 0.005
        assert policy.next_epoch(7, 0.005, 1_000) == 0.005

    def test_rejects_non_positive_widths(self):
        for width in (0.0, -1.0):
            with pytest.raises(ConfigurationError):
                FixedEpochPolicy(width)

    def test_describes_itself(self):
        assert "0.005" in FixedEpochPolicy(0.005).describe()


class TestAdaptiveEpochPolicy:
    def _policy(self, **kwargs):
        defaults = dict(
            initial_epoch=0.004,
            min_epoch=0.001,
            max_epoch=0.016,
            widen_below=2,
            narrow_above=16,
            factor=2.0,
        )
        defaults.update(kwargs)
        return AdaptiveEpochPolicy(**defaults)

    def test_narrows_under_heavy_settlement_volume(self):
        policy = self._policy()
        assert policy.next_epoch(0, 0.004, 16) == 0.002
        assert policy.next_epoch(0, 0.004, 500) == 0.002

    def test_widens_when_barriers_run_empty(self):
        policy = self._policy()
        assert policy.next_epoch(0, 0.004, 0) == 0.008
        assert policy.next_epoch(0, 0.004, 2) == 0.008

    def test_keeps_the_width_in_the_dead_band(self):
        policy = self._policy()
        for volume in (3, 8, 15):
            assert policy.next_epoch(0, 0.004, volume) == 0.004

    def test_clamps_at_both_ends(self):
        policy = self._policy()
        assert policy.next_epoch(0, 0.001, 100) == 0.001  # already at min
        assert policy.next_epoch(0, 0.016, 0) == 0.016  # already at max
        assert policy.next_epoch(0, 0.0015, 100) == 0.001  # clamped down
        assert policy.next_epoch(0, 0.012, 0) == 0.016  # clamped up

    def test_is_a_pure_function_of_its_inputs(self):
        """Statelessness is what makes pause/resume re-evaluation safe."""
        policy = self._policy()
        for _ in range(3):
            assert policy.next_epoch(5, 0.004, 20) == policy.next_epoch(5, 0.004, 20)

    def test_rejects_degenerate_configurations(self):
        with pytest.raises(ConfigurationError):
            self._policy(min_epoch=0.0)
        with pytest.raises(ConfigurationError):
            self._policy(initial_epoch=0.05)  # above max
        with pytest.raises(ConfigurationError):
            self._policy(factor=1.0)
        with pytest.raises(ConfigurationError):
            self._policy(widen_below=16, narrow_above=16)
        with pytest.raises(ConfigurationError):
            self._policy(widen_below=-1)


class TestSchedulerPolicyIntegration:
    def test_scheduler_needs_an_epoch_or_a_policy(self):
        with pytest.raises(ConfigurationError):
            EpochScheduler()
        assert EpochScheduler(epoch=0.005).epoch == 0.005
        assert EpochScheduler(policy=FixedEpochPolicy(0.01)).epoch == 0.01

    def test_adaptive_grid_changes_the_barrier_schedule_not_the_outcome(
        self, fast_network
    ):
        fixed = _build(fast_network, policy=FixedEpochPolicy(0.005))
        fixed_result = fixed.run()
        adaptive = _build(
            fast_network,
            policy=AdaptiveEpochPolicy(
                initial_epoch=0.005, min_epoch=0.00125, max_epoch=0.02
            ),
        )
        adaptive_result = adaptive.run()
        try:
            assert adaptive.scheduler.barriers != fixed.scheduler.barriers
            # The protocol outcome is identical: same commits, same audits —
            # only settlement *timing* (and with it the streams' delivery
            # times) moves with the grid.
            assert adaptive_result.committed_count == fixed_result.committed_count
            for system in (fixed, adaptive):
                report = system.check_definition1()
                assert report.ok, report.violations
                audit = system.supply_audit()
                assert audit.fully_settled and audit.fully_retired
        finally:
            fixed.close()
            adaptive.close()

    def test_adaptive_runs_are_deterministic_per_seed(self, fast_network):
        def run_once():
            system = _build(
                fast_network, policy=AdaptiveEpochPolicy(initial_epoch=0.005)
            )
            result = system.run()
            barriers = system.scheduler.barriers
            system.close()
            return result.fingerprint(), barriers

        first, second = run_once(), run_once()
        assert first == second

    def test_pause_resume_equals_continuous_under_adaptive_grid(self, fast_network):
        """The policy re-evaluates its width decision on resume from the
        same accumulated volume, so the barrier sequence is unchanged."""
        policy = AdaptiveEpochPolicy(initial_epoch=0.005)
        paused = _build(fast_network, policy=policy)
        paused.run(until=0.007)
        paused.run(until=0.013)
        resumed = paused.run()
        continuous_system = _build(
            fast_network, policy=AdaptiveEpochPolicy(initial_epoch=0.005)
        )
        continuous = continuous_system.run()
        try:
            assert resumed.comparable_payload() == continuous.comparable_payload()
            assert resumed.fingerprint() == continuous.fingerprint()
            assert paused.scheduler.barriers == continuous_system.scheduler.barriers
        finally:
            paused.close()
            continuous_system.close()

    def test_epoch_keyword_still_builds_a_fixed_grid(self, fast_network):
        system = ClusterSystem(
            shard_count=2, network_config=fast_network, backend="serial", epoch=0.01
        )
        assert isinstance(system.epoch_policy, FixedEpochPolicy)
        assert system.scheduler.epoch == 0.01
        system.close()

    def test_shared_clock_mode_has_no_policy(self, fast_network):
        system = ClusterSystem(shard_count=2, network_config=fast_network)
        assert system.epoch_policy is None
        assert system.scheduler is None
        system.close()


class TestLatencyTargetEpochPolicy:
    def _policy(self, **kwargs):
        from repro.cluster import LatencyTargetEpochPolicy

        defaults = dict(
            target_p95=0.008,
            initial_epoch=0.004,
            min_epoch=0.001,
            max_epoch=0.016,
            factor=2.0,
            window=16,
            min_samples=4,
            slack=0.5,
        )
        defaults.update(kwargs)
        return LatencyTargetEpochPolicy(**defaults)

    def test_holds_until_enough_samples(self):
        policy = self._policy()
        policy.observe_latency([0.05, 0.05, 0.05])  # above target, too few
        assert policy.next_epoch(0, 0.004, 0) == 0.004

    def test_narrows_when_p95_misses_the_target(self):
        policy = self._policy()
        policy.observe_latency([0.02] * 8)
        assert policy.observed_p95() == 0.02
        assert policy.next_epoch(0, 0.004, 0) == 0.002

    def test_widens_when_p95_beats_the_target_with_slack(self):
        policy = self._policy()
        policy.observe_latency([0.001] * 8)  # far below 0.5 * target
        assert policy.next_epoch(0, 0.004, 0) == 0.008

    def test_holds_inside_the_dead_band(self):
        policy = self._policy()
        policy.observe_latency([0.006] * 8)  # between slack*target and target
        assert policy.next_epoch(0, 0.004, 0) == 0.004

    def test_clamps_at_both_ends(self):
        policy = self._policy()
        policy.observe_latency([0.02] * 8)
        assert policy.next_epoch(0, 0.001, 0) == 0.001  # at min already
        fast = self._policy()
        fast.observe_latency([0.0001] * 8)
        assert fast.next_epoch(0, 0.016, 0) == 0.016  # at max already

    def test_window_forgets_old_samples(self):
        policy = self._policy(window=4)
        policy.observe_latency([0.05] * 4)  # slow era
        policy.observe_latency([0.001] * 4)  # fast era evicts it
        assert policy.next_epoch(0, 0.004, 0) == 0.008  # widens: p95 is fast

    def test_decision_is_repeatable_between_observations(self):
        """Pause/resume re-evaluates next_epoch without new observations;
        the answer must not drift."""
        policy = self._policy()
        policy.observe_latency([0.02] * 8)
        assert policy.next_epoch(3, 0.004, 5) == policy.next_epoch(3, 0.004, 5)

    def test_p95_is_nearest_rank(self):
        from repro.cluster.backends import p95

        assert p95([]) == 0.0
        assert p95([0.5]) == 0.5
        samples = [float(i) for i in range(1, 21)]  # 1..20
        assert p95(samples) == 19.0  # ceil(0.95 * 20) = 19th rank

    def test_validation(self):
        for bad in (
            dict(target_p95=0.0),
            dict(min_epoch=0.0),
            dict(initial_epoch=0.05),  # above max
            dict(factor=1.0),
            dict(window=0),
            dict(min_samples=0),
            dict(slack=0.0),
            dict(slack=1.0),
        ):
            with pytest.raises(ConfigurationError):
                self._policy(**bad)

    def test_backend_invariant_and_deterministic(self, fast_network):
        """The latency feed is built from barrier times and shard-local
        validation times, so the latency-driven grid — a *stateful* policy —
        still fingerprints identically on every backend, twice over."""
        def run_once(backend):
            system = _build(fast_network, policy=self._policy(target_p95=0.004))
            if backend != "serial":
                system.close()
                system = ClusterSystem(
                    shard_count=2, replicas_per_shard=4, initial_balance=500,
                    network_config=fast_network, backend=backend,
                    epoch_policy=self._policy(target_p95=0.004), seed=3,
                )
                workload = cluster_open_loop_workload(
                    ClusterWorkloadConfig(
                        user_count=60, aggregate_rate=1_500.0, duration=0.02,
                        cross_shard_fraction=1.0, router=system.router, seed=3,
                    )
                )
                system.schedule_submissions(workload)
            result = system.run()
            fingerprint = result.fingerprint()
            barriers = system.scheduler.barriers
            assert system.check_definition1().ok
            system.close()
            return fingerprint, barriers

        serial = run_once("serial")
        assert run_once("serial") == serial  # deterministic per seed
        assert run_once("thread") == serial
        assert run_once("process") == serial

    def test_narrows_the_grid_toward_the_goal(self, fast_network):
        """Against a fixed grid too coarse for the goal, the policy spends
        more barriers and lands a lower settlement p95."""
        coarse = _build(fast_network, policy=FixedEpochPolicy(0.008))
        coarse.run()
        targeted = _build(
            fast_network,
            policy=self._policy(
                target_p95=0.004, initial_epoch=0.008, min_epoch=0.001,
                max_epoch=0.016,
            ),
        )
        targeted.run()
        try:
            assert targeted.scheduler.barriers > coarse.scheduler.barriers
            assert (
                targeted.settlement.settlement_latency_p95()
                <= coarse.settlement.settlement_latency_p95()
            )
        finally:
            coarse.close()
            targeted.close()
