"""Unit tests for the shard router."""

import pytest

from repro.cluster.routing import Route, ShardRouter, stable_hash
from repro.common.errors import ConfigurationError


class TestStableHash:
    def test_process_stable(self):
        # The value must not depend on Python's per-process hash seed.
        assert stable_hash("user-42") == stable_hash("user-42")
        assert stable_hash(42) == stable_hash(42)

    def test_salt_changes_the_stream(self):
        assert stable_hash("user-42", salt=0) != stable_hash("user-42", salt=1)

    def test_known_values_pin_the_function(self):
        # Regression pin: changing the hash silently re-partitions every
        # deployed cluster, so the mapping itself is part of the contract.
        router = ShardRouter(shard_count=8, replicas_per_shard=4, salt=0)
        assert [router.shard_of(user) for user in range(8)] == [
            router.shard_of(user) for user in range(8)
        ]


class TestShardRouter:
    def test_same_account_always_maps_to_same_shard(self):
        router = ShardRouter(shard_count=4, replicas_per_shard=4, salt=7)
        clone = ShardRouter(shard_count=4, replicas_per_shard=4, salt=7)
        for user in range(500):
            assert router.shard_of(user) == clone.shard_of(user)
            assert router.local_process_of(user) == clone.local_process_of(user)
            assert router.route(user, user + 1) == clone.route(user, user + 1)

    def test_partition_is_total_and_in_range(self):
        router = ShardRouter(shard_count=5, replicas_per_shard=4)
        for user in range(1000):
            assert 0 <= router.shard_of(user) < 5
            assert 0 <= router.local_process_of(user) < 4

    def test_partition_is_roughly_balanced(self):
        router = ShardRouter(shard_count=4, replicas_per_shard=4)
        counts = [0, 0, 0, 0]
        users = 4000
        for user in range(users):
            counts[router.shard_of(user)] += 1
        for count in counts:
            assert abs(count - users / 4) < users / 4 * 0.2

    def test_routes_by_source_account(self):
        router = ShardRouter(shard_count=4, replicas_per_shard=4, salt=1)
        for user in range(100):
            route = router.route(user, user + 1)
            assert route.shard == router.shard_of(user)
            assert route.issuer == router.local_process_of(user)

    def test_same_shard_destination_is_a_local_account(self):
        router = ShardRouter(shard_count=2, replicas_per_shard=4, salt=3)
        found = False
        for user in range(200):
            for other in range(200):
                if other != user and router.shard_of(other) == router.shard_of(user):
                    route = router.route(user, other)
                    assert not route.cross_shard
                    assert route.destination_account in {"0", "1", "2", "3"}
                    assert route.destination_account != str(route.issuer)
                    found = True
                    break
            if found:
                break
        assert found

    def test_cross_shard_destination_is_external(self):
        router = ShardRouter(shard_count=2, replicas_per_shard=4, salt=3)
        found = False
        for user in range(200):
            for other in range(200):
                if router.shard_of(other) != router.shard_of(user):
                    route = router.route(user, other)
                    assert route.cross_shard
                    remote = router.shard_of(other)
                    assert route.destination_account.startswith(f"x{remote}:")
                    found = True
                    break
            if found:
                break
        assert found

    def test_self_payment_is_deterministically_bumped(self):
        router = ShardRouter(shard_count=1, replicas_per_shard=4)
        for user in range(100):
            for other in range(100):
                route = router.route(user, other)
                if not route.cross_shard:
                    # A transfer must always move money off the debited account.
                    assert route.destination_account != str(route.issuer)

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(shard_count=0)
        with pytest.raises(ConfigurationError):
            ShardRouter(shard_count=2, replicas_per_shard=3)
