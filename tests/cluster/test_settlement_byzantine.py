"""Adversarial settlement tests: forged, under-quorum, replayed, withheld.

The settlement inbox is the destination shard's trust boundary, so every
test injects adversarial input there (or upstream of it, via the voucher
behaviours of :mod:`repro.byzantine.behaviors`) and asserts the same three
things the paper's fault-containment framing demands: the bogus input is
rejected, destination balances are untouched, and the cluster audits —
per-shard Definition 1 plus the cross-ledger supply identity — stay clean.

The whole suite is parametrized over the execution backends: every fault
scenario runs on the classic shared clock *and* under
Serial/Thread/ProcessPool epoch execution, so fault containment is exercised
under real parallelism, not just serially.  The relay, inbox and voucher
behaviours live in the driver process on every backend (that is the
backends' design: the trust boundary is poked identically everywhere), while
the shard protocol reacting to the faults runs wherever the backend puts it.
"""

import pytest

from repro.byzantine.behaviors import CrashBehavior, EquivocationPlan, ScriptedBehavior
from repro.cluster import ClusterSystem
from repro.cluster.settlement import (
    RetirementCertificate,
    SettlementAck,
    SettlementAckClaim,
    SettlementCertificate,
    SettlementClaim,
    SettlementConfig,
    SettlementVoucher,
    mint_transfer,
)
from repro.crypto.signatures import SignatureScheme
from repro.workloads.cluster_driver import ClusterSubmission

BACKENDS = [None, "serial", "thread", "process"]


@pytest.fixture(params=BACKENDS, ids=["shared", "serial", "thread", "process"])
def make_system(request, fast_network):
    """A factory for 2-shard systems on the parametrized backend.

    Created systems are closed at teardown so process-pool workers never
    outlive their test.
    """
    created = []

    def factory(seed=3, **kwargs):
        system = ClusterSystem(
            shard_count=2,
            replicas_per_shard=4,
            broadcast="bracha",
            network_config=fast_network,
            backend=request.param,
            seed=seed,
            **kwargs,
        )
        created.append(system)
        return system

    yield factory
    for system in created:
        system.close()


def _user_on_shard(router, shard):
    return next(u for u in range(100_000) if router.shard_of(u) == shard)


def _destination_balances(system, shard=1):
    return {
        pid: node.all_known_balances()
        for pid, node in system.shards[shard].nodes.items()
    }


def _claim(system, amount=1_000_000, sequence=1, account="0"):
    return SettlementClaim(
        source_shard=0,
        destination_shard=1,
        issuer=0,
        sequence=sequence,
        account=account,
        amount=amount,
    )


class TestForgedCertificates:
    def test_forged_signatures_mint_nothing(self, make_system):
        """A certificate signed by keys outside the source shard is rejected."""
        system = make_system()
        system.start()
        claim = _claim(system)
        rogue = SignatureScheme(seed=999)  # the attacker's own key universe
        signatures = tuple(rogue.keypair_for(pid).sign(claim) for pid in range(3))
        forged = SettlementCertificate(
            claim=claim, certificate=rogue.make_certificate(claim, signatures)
        )
        before = _destination_balances(system)
        for pid in range(4):
            inbox = system.settlement.inboxes[(1, pid)]
            assert not inbox.receive(forged)
            assert inbox.rejected[-1][1] == "invalid quorum certificate"
            assert not inbox.accepted
        assert _destination_balances(system) == before
        report = system.check_definition1()
        assert report.ok, report.violations
        assert report.conservation.minted == 0

    def test_misrouted_certificate_is_rejected(self, make_system):
        system = make_system()
        system.start()
        claim = SettlementClaim(
            source_shard=0, destination_shard=5, issuer=0, sequence=1, account="0", amount=9
        )
        scheme = system.shards[0].scheme
        signatures = tuple(scheme.keypair_for(pid).sign(claim) for pid in range(3))
        certificate = SettlementCertificate(
            claim=claim, certificate=scheme.make_certificate(claim, signatures)
        )
        inbox = system.settlement.inboxes[(1, 0)]
        assert not inbox.receive(certificate)
        assert inbox.rejected[-1][1] == "misrouted certificate"


class TestUnderQuorumCertificates:
    def test_fewer_than_2f_plus_1_signatures_mint_nothing(self, make_system):
        """f+1 = 2 genuine signatures are not a quorum (2f+1 = 3 needed)."""
        system = make_system()
        system.start()
        claim = _claim(system, amount=50)
        scheme = system.shards[0].scheme  # genuine keys, too few of them
        signatures = tuple(scheme.keypair_for(pid).sign(claim) for pid in range(2))
        under = SettlementCertificate(
            claim=claim, certificate=scheme.make_certificate(claim, signatures)
        )
        before = _destination_balances(system)
        for pid in range(4):
            inbox = system.settlement.inboxes[(1, pid)]
            assert not inbox.receive(under)
            assert inbox.rejected[-1][1] == "invalid quorum certificate"
        assert _destination_balances(system) == before
        assert system.check_definition1().ok

    def test_duplicated_signer_does_not_fake_a_quorum(self, make_system):
        """Three signatures from one replica are one signer, not a quorum."""
        system = make_system()
        system.start()
        claim = _claim(system, amount=50)
        scheme = system.shards[0].scheme
        one_signer = tuple(scheme.keypair_for(0).sign(claim) for _ in range(3))
        padded = SettlementCertificate(
            claim=claim, certificate=scheme.make_certificate(claim, one_signer)
        )
        inbox = system.settlement.inboxes[(1, 0)]
        assert not inbox.receive(padded)
        assert inbox.rejected[-1][1] == "invalid quorum certificate"


class TestReplayedCertificates:
    def test_replayed_certificate_mints_exactly_once(self, make_system):
        # Compaction off so the genuine certificate stays resident in the
        # relay journal after quiescence (with the lifecycle on it would be
        # compacted behind the retirement watermark) — this test needs the
        # byte-identical original to replay it against the inboxes.
        system = make_system(settlement_config=SettlementConfig(compaction=False))
        a = _user_on_shard(system.router, 0)
        b = _user_on_shard(system.router, 1)
        system.schedule_submissions(
            [ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=9)]
        )
        system.run()
        relay = system.settlement.relay(0, 1)
        assert len(relay.delivered) == 1
        genuine = relay.delivered[0]
        after_first = _destination_balances(system)
        for pid in range(4):
            inbox = system.settlement.inboxes[(1, pid)]
            assert not inbox.receive(genuine)  # byte-identical replay
            assert inbox.rejected[-1][1] == "replayed certificate"
        assert _destination_balances(system) == after_first
        report = system.check_definition1()
        assert report.ok, report.violations
        assert report.conservation.minted == 9  # once, not twice

    def test_ahead_of_sequence_certificates_wait_for_the_gap_to_fill(self, make_system):
        """A verified certificate that skips ahead is buffered, not minted —
        and mints in order once the missing slot arrives."""
        system = make_system()
        system.start()
        scheme = system.shards[0].scheme

        def certify(claim):
            signatures = tuple(scheme.keypair_for(pid).sign(claim) for pid in range(3))
            return SettlementCertificate(
                claim=claim, certificate=scheme.make_certificate(claim, signatures)
            )

        first = certify(_claim(system, amount=5, sequence=1))
        second = certify(_claim(system, amount=7, sequence=2))
        inbox = system.settlement.inboxes[(1, 0)]
        assert inbox.receive(second)  # accepted but held: stream starts at 1
        assert inbox.buffered_count == 1
        assert inbox.accepted == []
        assert not inbox.receive(second)  # same slot again is a replay
        assert inbox.rejected[-1][1] == "replayed certificate"
        assert inbox.receive(first)  # the gap fills: both mint, in order
        assert [c.claim.sequence for c in inbox.accepted] == [1, 2]
        assert inbox.buffered_count == 0
        assert inbox.minted_amount() == 12

    def test_unverified_certificates_are_never_buffered(self, make_system):
        """The ahead-of-sequence buffer only holds quorum-verified input, so
        an attacker cannot park forgeries in it."""
        system = make_system()
        system.start()
        rogue = SignatureScheme(seed=999)
        ahead = _claim(system, amount=5, sequence=2)
        signatures = tuple(rogue.keypair_for(pid).sign(ahead) for pid in range(3))
        forged = SettlementCertificate(
            claim=ahead, certificate=rogue.make_certificate(ahead, signatures)
        )
        inbox = system.settlement.inboxes[(1, 0)]
        assert not inbox.receive(forged)
        assert inbox.rejected[-1][1] == "invalid quorum certificate"
        assert inbox.buffered_count == 0


class TestWithheldAndEquivocatedVouchers:
    def test_f_silent_replicas_cannot_block_settlement(self, make_system):
        """With f = 1 silent source replica, the other 3 still form a quorum."""
        system = make_system()
        system.settlement.set_voucher_behavior(0, 3, CrashBehavior(send_limit=0))
        a = _user_on_shard(system.router, 0)
        b = _user_on_shard(system.router, 1)
        system.schedule_submissions(
            [ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=9)]
        )
        system.run()
        audit = system.supply_audit()
        assert audit.minted == 9
        assert audit.fully_settled
        assert system.check_definition1().ok

    def test_more_than_f_withheld_vouchers_park_the_credit_safely(self, make_system):
        """Beyond f faults settlement loses liveness but never conservation."""
        system = make_system()
        # EquivocationPlan machinery picks which half of the replica set the
        # adversary controls; we silence that half's vouchers.
        plan = EquivocationPlan.split_evenly(range(4))
        for replica in plan.partition_a:  # 2 of 4 silenced: quorum of 3 is dead
            system.settlement.set_voucher_behavior(0, replica, CrashBehavior(send_limit=0))
        a = _user_on_shard(system.router, 0)
        b = _user_on_shard(system.router, 1)
        system.schedule_submissions(
            [ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=9)]
        )
        system.run()
        audit = system.supply_audit()
        assert audit.minted == 0
        assert audit.in_flight == 9  # parked in the source ledger, not lost
        assert audit.conserved
        assert not audit.fully_settled
        assert system.settlement.pending_claims() == 1
        b_account = system.router.local_account_of(b)
        initial = system.shards[1].initial_balances()[b_account]
        assert system.shards[1].nodes[0].balance_of(b_account) == initial
        report = system.check_definition1()
        assert report.ok, report.violations  # Definition 1 is untouched

    def test_equivocating_voucher_cannot_inflate_the_amount(self, make_system):
        """One replica vouching an inflated claim changes nothing: its bogus
        claim never reaches quorum, the honest claim still does."""
        system = make_system()
        bogus_claim = _claim(system, amount=1_000_000, account="0")
        keypair = system.shards[0].scheme.keypair_for(3)
        bogus_voucher = SettlementVoucher(
            claim=bogus_claim, signature=keypair.sign(bogus_claim)
        )
        system.settlement.set_voucher_behavior(
            0, 3, ScriptedBehavior(substitutions={1: bogus_voucher})
        )
        a = _user_on_shard(system.router, 0)
        b = _user_on_shard(system.router, 1)
        system.schedule_submissions(
            [ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=9)]
        )
        system.run()
        audit = system.supply_audit()
        assert audit.minted == 9  # the honest amount, not the inflated one
        assert system.settlement.pending_claims() == 1  # the bogus claim, starved
        assert system.check_definition1().ok


class TestOutOfOrderCertification:
    def test_certificates_assembled_out_of_order_still_mint_in_order(self, make_system):
        """A Byzantine replica withholding its voucher for claim 1 while
        vouchering claim 2 makes the relay certify 2 before 1; the inboxes
        must hold certificate 2 and mint both once 1 arrives."""
        system = make_system()
        system.start()
        scheme = system.shards[0].scheme
        relay = system.settlement.relay(0, 1)
        first = _claim(system, amount=5, sequence=1)
        second = _claim(system, amount=7, sequence=2)

        def voucher(signer, claim):
            return SettlementVoucher(
                claim=claim, signature=scheme.keypair_for(signer).sign(claim)
            )

        # Claim 2 completes its quorum first (Byzantine replica 3 vouchers it
        # but withholds claim 1, which needs the slower honest replicas).
        for signer in (3, 0, 1):
            relay.submit_voucher(voucher(signer, second))
        for signer in (0, 1, 2):
            relay.submit_voucher(voucher(signer, first))
        assert [c.claim.sequence for c in relay.certificates] == [2, 1]
        system.drain()
        account_initial = system.shards[1].initial_balances()["0"]
        for pid, node in system.shards[1].nodes.items():
            inbox = system.settlement.inboxes[(1, pid)]
            assert [c.claim.sequence for c in inbox.accepted] == [1, 2]
            assert inbox.buffered_count == 0
            assert node.balance_of("0") == account_initial + 5 + 7

    def test_selective_voucher_withholding_cannot_wedge_a_stream(self, make_system):
        """End to end: one source replica drops only its *first* voucher;
        every credit of the stream still settles."""

        class DropFirstVoucher(CrashBehavior):
            """Inverse of a crash: silent for the first send, honest after."""

            def transform(self, sender, recipient, message):
                outgoing = super().transform(sender, recipient, message)
                self.send_limit += 1  # re-arm: only the first send is lost
                return outgoing

        system = make_system()
        system.settlement.set_voucher_behavior(0, 3, DropFirstVoucher(send_limit=0))
        a = _user_on_shard(system.router, 0)
        b = _user_on_shard(system.router, 1)
        system.schedule_submissions(
            [
                ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=4),
                ClusterSubmission(time=0.002, source_user=a, destination_user=b, amount=6),
            ]
        )
        system.run()
        audit = system.supply_audit()
        assert audit.minted == 10
        assert audit.fully_settled
        report = system.check_definition1()
        assert report.ok, report.violations


class TestUncertifiedMints:
    def test_a_mint_without_a_certificate_fails_the_audit(self, make_system):
        """A Byzantine destination replica minting out of thin air is caught:
        its provision account has no certificate backing, so the per-shard
        checker flags the unbacked debit (C2)."""
        system = make_system()
        system.start()
        rogue_mint = mint_transfer(_claim(system, amount=777))
        system.shards[1].nodes[2].mint_certified_credit(rogue_mint)
        report = system.check_definition1()
        assert not report.ok
        assert any("C2" in violation for violation in report.violations)


def _run_one_settled_payment(system, amount=9):
    a = _user_on_shard(system.router, 0)
    b = _user_on_shard(system.router, 1)
    system.schedule_submissions(
        [ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=amount)]
    )
    system.run()
    return system.supply_audit()


class TestByzantineAcks:
    """The retirement leg under attack: forged, under-quorum, replayed and
    withheld acknowledgements must never retire an unsettled record — and
    must never wedge settlement or the other streams' compaction either."""

    def test_forged_acks_retire_nothing(self, make_system):
        """Acks signed outside the destination replica set (including by the
        *source* shard's own keys) are rejected at the relay and can never
        assemble a retirement certificate."""
        system = make_system(settlement_config=SettlementConfig(compaction=False))
        system.start()
        relay = system.settlement.relay(0, 1)
        claim = SettlementAckClaim(
            source_shard=0, destination_shard=1, issuer=0, sequence=1
        )
        rogue = SignatureScheme(seed=999)
        source_scheme = system.shards[0].scheme
        for scheme in (rogue, source_scheme):
            for signer in range(4):
                ack = SettlementAck(
                    claim=claim, signature=scheme.keypair_for(signer).sign(claim)
                )
                assert not relay.submit_ack(ack)
        assert relay.pending_acks == 0
        assert not relay.retirement_certificates
        assert system.retired_records() == 0

    def test_forged_retirement_certificates_never_reach_the_ledger(self, make_system):
        """Even a certificate injected straight at the compaction gate (as if
        the relay were compromised) is re-verified and rejected."""
        system = make_system()
        audit = _run_one_settled_payment(system)
        assert audit.fully_retired  # the honest lifecycle completed
        retired_before = system.retired_records()
        claim = SettlementAckClaim(
            source_shard=0, destination_shard=1, issuer=0, sequence=50
        )
        rogue = SignatureScheme(seed=999)
        forged = RetirementCertificate(
            claim=claim,
            certificate=rogue.make_certificate(
                claim, tuple(rogue.keypair_for(pid).sign(claim) for pid in range(3))
            ),
        )
        gate = system.settlement.gates[0]
        assert not gate.receive(forged)
        assert gate.rejected[-1][1] == "invalid ack quorum certificate"
        assert system.retired_records() == retired_before
        assert system.check_definition1().ok

    def test_under_quorum_acks_never_retire(self, make_system):
        """With 2 of 4 destination replicas withholding acks, the 2 remaining
        signatures are below the 2f+1 = 3 quorum: the record stays resident,
        settlement itself is untouched, and every audit stays clean."""
        system = make_system()
        for replica in (2, 3):
            system.settlement.set_ack_behavior(1, replica, CrashBehavior(send_limit=0))
        audit = _run_one_settled_payment(system)
        assert audit.minted == 9  # settlement completed regardless
        assert audit.fully_settled
        assert audit.retired == 0  # but nothing could retire
        assert not audit.fully_retired
        assert system.resident_settlement_records() > 0
        assert system.settlement.pending_acks() > 0
        assert audit.conserved and audit.retirement_backed
        assert system.check_definition1().ok

    def test_f_withheld_acks_cannot_block_compaction(self, make_system):
        """One silent destination replica (f = 1) leaves 3 ackers — exactly a
        quorum — so compaction completes as if everyone were honest."""
        system = make_system()
        system.settlement.set_ack_behavior(1, 3, CrashBehavior(send_limit=0))
        audit = _run_one_settled_payment(system)
        assert audit.minted == 9
        assert audit.fully_retired
        assert system.resident_settlement_records() == 0
        assert system.check_definition1().ok

    def test_replayed_retirement_certificates_are_stale_noops(self, make_system):
        system = make_system()
        audit = _run_one_settled_payment(system)
        assert audit.fully_retired
        relay = system.settlement.relay(0, 1)
        assert len(relay.retirement_certificates) == 1
        genuine = relay.retirement_certificates[0]
        gate = system.settlement.gates[0]
        retired_before = system.retired_records()
        assert not gate.receive(genuine)  # byte-identical replay
        assert gate.rejected[-1][1] == "stale retirement watermark"
        assert system.retired_records() == retired_before
        assert system.supply_audit().retirement_backed
        assert system.check_definition1().ok

    def test_inflated_ack_watermarks_cannot_outrun_settlement(self, make_system):
        """A Byzantine destination replica acknowledging a *future* sequence
        gets its bogus claim parked below quorum forever: the honest
        replicas only acknowledge what they minted."""
        system = make_system()
        bogus = SettlementAckClaim(
            source_shard=0, destination_shard=1, issuer=0, sequence=40
        )
        keypair = system.shards[1].scheme.keypair_for(3)
        bogus_ack = SettlementAck(claim=bogus, signature=keypair.sign(bogus))
        # Acks travel back towards the source shard, so the substitution is
        # keyed by recipient shard 0.
        system.settlement.set_ack_behavior(
            1, 3, ScriptedBehavior(substitutions={0: bogus_ack})
        )
        audit = _run_one_settled_payment(system)
        assert audit.minted == 9
        # The honest watermark (sequence 1) still certified with 3 honest
        # acks; the inflated claim is starved below quorum.
        assert audit.fully_retired
        assert system.settlement.pending_acks() == 1
        issuer = system.router.local_process_of(_user_on_shard(system.router, 0))
        assert system.settlement.gates[0].watermark(1, issuer) == 1
        assert audit.retirement_backed
        assert system.check_definition1().ok

    def test_withheld_acks_wedge_only_their_own_stream(self, make_system):
        """Compaction is per stream: a destination shard that never acks one
        source's stream does not stop the reverse direction's lifecycle."""
        system = make_system()
        # Shard 1 never acks (all four replicas silent on the ack leg)...
        for replica in range(4):
            system.settlement.set_ack_behavior(1, replica, CrashBehavior(send_limit=0))
        a = _user_on_shard(system.router, 0)
        b = _user_on_shard(system.router, 1)
        system.schedule_submissions(
            [
                # ... so A -> B stays resident at shard 0 ...
                ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=9),
                # ... while B -> A retires normally at shard 1.
                ClusterSubmission(time=0.03, source_user=b, destination_user=a, amount=3),
            ]
        )
        system.run()
        audit = system.supply_audit()
        assert audit.minted == 12
        assert audit.fully_settled
        assert audit.retired == 3  # only the acked stream compacted
        assert system.shards[0].resident_settlement_records() == 1
        assert system.shards[1].resident_settlement_records() == 0
        assert audit.conserved and audit.retirement_backed
        assert system.check_definition1().ok


class TestVerificationCacheUnderForgery:
    """The verify cache must be un-poisonable: its key covers payload,
    signer set and tags, so warming it with a genuine certificate can never
    make a forged or mutated one pass (nor vice versa)."""

    def _scheme_claim_certificate(self):
        scheme = SignatureScheme(seed=9)
        claim = SettlementClaim(
            source_shard=0, destination_shard=1, issuer=2,
            sequence=1, account="x1:2", amount=25,
        )
        signatures = [scheme.keypair_for(p).sign(claim) for p in range(3)]
        return scheme, claim, scheme.make_certificate(claim, signatures)

    def _warm(self, scheme, claim, certificate):
        for _ in range(3):  # relay -> inbox -> gate
            assert scheme.verify_certificate(claim, certificate, quorum_size=3)

    def test_mutated_claim_misses_the_warm_cache(self):
        import dataclasses

        scheme, claim, certificate = self._scheme_claim_certificate()
        self._warm(scheme, claim, certificate)
        inflated = dataclasses.replace(claim, amount=2_500)
        assert not scheme.verify_certificate(inflated, certificate, quorum_size=3)
        # The genuine verdict is still intact afterwards.
        assert scheme.verify_certificate(claim, certificate, quorum_size=3)

    def test_swapped_tag_misses_the_warm_cache(self):
        from repro.crypto.signatures import QuorumCertificate, Signature

        scheme, claim, certificate = self._scheme_claim_certificate()
        self._warm(scheme, claim, certificate)
        first, second, third = certificate.signatures
        forged = QuorumCertificate(
            payload_hash=certificate.payload_hash,
            signatures=(first, Signature(signer=second.signer, tag=third.tag), third),
        )
        assert not scheme.verify_certificate(claim, forged, quorum_size=3)

    def test_forged_signer_identity_misses_the_warm_cache(self):
        from repro.crypto.signatures import QuorumCertificate, Signature

        scheme, claim, certificate = self._scheme_claim_certificate()
        self._warm(scheme, claim, certificate)
        first, second, third = certificate.signatures
        # A Byzantine relay relabels one honest signature as a fourth signer
        # to fake quorum breadth.
        forged = QuorumCertificate(
            payload_hash=certificate.payload_hash,
            signatures=(first, second, Signature(signer=3, tag=third.tag)),
        )
        assert not scheme.verify_certificate(claim, forged, quorum_size=3)

    def test_replayed_certificate_for_the_next_sequence_is_rejected(self):
        import dataclasses

        scheme, claim, certificate = self._scheme_claim_certificate()
        self._warm(scheme, claim, certificate)
        replay_target = dataclasses.replace(claim, sequence=2)
        assert not scheme.verify_certificate(replay_target, certificate, quorum_size=3)

    def test_forgeries_never_register_as_cache_hits(self):
        from repro.obs import MetricsRegistry

        scheme, claim, certificate = self._scheme_claim_certificate()
        registry = MetricsRegistry()
        scheme.metrics = registry
        self._warm(scheme, claim, certificate)
        hits_after_warm = registry.counter("sig.verify_certificate_cached").value
        import dataclasses

        assert not scheme.verify_certificate(
            dataclasses.replace(claim, amount=1), certificate, quorum_size=3
        )
        # The forgery took the full verification path, not the cache.
        assert (
            registry.counter("sig.verify_certificate_cached").value == hits_after_warm
        )


class TestOneCheckAssemblyFallback:
    """Certificate assembly runs one batch verdict; when it fails, the relay
    falls back to per-signature checks, drops exactly the divergent members
    and keeps the honest remainder — so a forged entry that somehow reached
    the pending table can delay a certificate but never corrupt one."""

    def _relay(self, **kwargs):
        from repro.network.simulator import Simulator
        from repro.cluster.settlement import SettlementRelay

        simulator = Simulator()
        scheme = SignatureScheme(seed=11)
        relay = SettlementRelay(
            source_shard=0,
            destination_shard=1,
            simulator=simulator,
            scheme=scheme,
            quorum_size=3,
            allowed_signers=frozenset(range(4)),
            config=SettlementConfig(),
            **kwargs,
        )
        return relay, simulator, scheme

    def _claim(self, sequence=1):
        return SettlementClaim(
            source_shard=0, destination_shard=1, issuer=0,
            sequence=sequence, account="2", amount=5,
        )

    def test_forged_pending_entry_is_dropped_and_honest_quorum_assembles(self):
        from repro.crypto.signatures import Signature

        relay, simulator, scheme = self._relay()
        claim = self._claim()
        for signer in (0, 1):
            assert relay.submit_voucher(
                SettlementVoucher(claim=claim, signature=scheme.keypair_for(signer).sign(claim))
            )
        # A forged signature lands in the pending table *past* the arrival
        # check (a compromised relay store, not a submitted voucher).
        relay._pending[claim][9] = Signature(signer=9, tag="f" * 64)
        rejected_before = relay.vouchers_rejected
        # The third honest voucher completes a 4-entry set: the batch verdict
        # fails, the fallback drops the forgery, and the honest three still
        # form the certificate in the same step.
        assert relay.submit_voucher(
            SettlementVoucher(claim=claim, signature=scheme.keypair_for(2).sign(claim))
        )
        assert len(relay.certificates) == 1
        certificate = relay.certificates[0].certificate
        assert {s.signer for s in certificate.signatures} == {0, 1, 2}
        assert relay.vouchers_rejected == rejected_before + 1
        assert scheme.verify_certificate(
            claim, certificate, quorum_size=3, allowed_signers=frozenset(range(4))
        )

    def test_forged_entry_below_quorum_keeps_the_claim_pending(self):
        from repro.crypto.signatures import Signature

        relay, simulator, scheme = self._relay()
        claim = self._claim()
        assert relay.submit_voucher(
            SettlementVoucher(claim=claim, signature=scheme.keypair_for(0).sign(claim))
        )
        relay._pending[claim][9] = Signature(signer=9, tag="f" * 64)
        # The next honest voucher brings the set to apparent quorum; the
        # batch verdict fails, the forgery is dropped, and the two honest
        # signatures stay pending — no certificate from a fake quorum.
        assert relay.submit_voucher(
            SettlementVoucher(claim=claim, signature=scheme.keypair_for(1).sign(claim))
        )
        assert not relay.certificates
        assert relay.pending_claims == 1
        assert set(relay._pending[claim]) == {0, 1}
        # The genuine third voucher completes the honest quorum.
        assert relay.submit_voucher(
            SettlementVoucher(claim=claim, signature=scheme.keypair_for(2).sign(claim))
        )
        assert len(relay.certificates) == 1

    def test_forged_ack_pending_entry_cannot_certify_retirement(self):
        from repro.crypto.signatures import Signature

        ack_scheme = SignatureScheme(seed=12)
        relay, simulator, scheme = self._relay(
            ack_scheme=ack_scheme,
            ack_quorum_size=3,
            ack_allowed_signers=frozenset(range(4)),
        )
        ack_claim = SettlementAckClaim(
            source_shard=0, destination_shard=1, issuer=0, sequence=1
        )
        for signer in (0, 1):
            assert relay.submit_ack(
                SettlementAck(
                    claim=ack_claim,
                    signature=ack_scheme.keypair_for(signer).sign(ack_claim),
                )
            )
        relay._ack_pending[ack_claim][9] = Signature(signer=9, tag="f" * 64)
        rejected_before = relay.acks_rejected
        assert relay.submit_ack(
            SettlementAck(
                claim=ack_claim,
                signature=ack_scheme.keypair_for(2).sign(ack_claim),
            )
        )
        # Fallback dropped the forgery and the honest quorum still certified
        # the watermark.
        assert relay.acks_rejected == rejected_before + 1
        assert relay.certified_watermark(0) == 1
        certificate = relay.retirement_certificates[-1]
        assert {s.signer for s in certificate.certificate.signatures} == {0, 1, 2}
