"""Deterministic contracts of sparse dependency-driven barrier pacing.

The property sweep (``tests/properties/test_sparse_barrier_properties.py``) pins
sparse ≡ dense at the fingerprint level across random configurations; this
module pins the *mechanism*: the recorded barrier schedule
(:attr:`ClusterResult.barrier_stream`) actually skips rendezvous, falls
back to dense pacing exactly where it must (``until=`` pauses, migration
move epochs), stays out of the fingerprint hash while remaining part of
payload-level comparisons, and the configuration surface rejects
combinations the scheduler cannot honour.
"""

import pytest

from repro.cluster import ClusterSystem, MigrationPlan
from repro.common.errors import ConfigurationError
from repro.workloads.cluster_driver import (
    ClusterWorkloadConfig,
    cluster_open_loop_workload,
)

REPLICAS = 4


def _system(fast_network, backend="serial", barrier_mode="sparse", **kwargs):
    return ClusterSystem(
        shard_count=kwargs.pop("shard_count", 3),
        replicas_per_shard=REPLICAS,
        batch_size=4,
        broadcast="bracha",
        initial_balance=500,
        network_config=fast_network,
        backend=backend,
        barrier_mode=barrier_mode,
        seed=9,
        **kwargs,
    )


def _workload(system, fraction=0.25, seed=5):
    return cluster_open_loop_workload(
        ClusterWorkloadConfig(
            user_count=60,
            aggregate_rate=2_000.0,
            duration=0.02,
            zipf_skew=1.0,
            cross_shard_fraction=fraction,
            router=system.router,
            seed=seed,
        )
    )


def _run(fast_network, barrier_mode, backend="serial", fraction=0.25, **kwargs):
    system = _system(fast_network, backend=backend, barrier_mode=barrier_mode, **kwargs)
    try:
        system.schedule_submissions(_workload(system, fraction=fraction))
        result = system.run()
        assert system.check_definition1().ok
        return result
    finally:
        system.close()


class TestSparseSchedule:
    def test_sparse_records_skips_and_run_ahead(self, fast_network):
        result = _run(fast_network, "sparse", fraction=0.0)
        rows = result.barrier_stream
        assert rows  # sparse runs always record their schedule
        for barrier, time, mode, participants, skipped, ahead in rows:
            assert mode in ("dense", "sparse")
            assert participants >= 0 and skipped >= 0 and ahead >= 0
        # With no cross-shard traffic at all, the dependency model must
        # actually thin the rendezvous: some barrier skipped shards or let
        # them run ahead — otherwise sparse pacing degenerated to dense.
        assert any(row[4] > 0 or row[5] > 0 for row in rows)

    def test_dense_runs_record_no_schedule(self, fast_network):
        result = _run(fast_network, "dense")
        # Dense payloads stay byte-identical to pre-sparse builds: the
        # barrier section exists but is empty.
        assert not result.barrier_stream
        assert result.fingerprint_payload()["barriers"] == []

    def test_schedule_is_excluded_from_hash_but_compared(self, fast_network):
        dense = _run(fast_network, "dense")
        sparse = _run(fast_network, "sparse")
        # Identical hash despite different pacing...
        assert dense.fingerprint() == sparse.fingerprint()
        # ...while the payloads legitimately differ in — and only in — the
        # barrier schedule, which payload-level comparisons do see.
        dense_payload = dense.comparable_payload()
        sparse_payload = sparse.comparable_payload()
        assert "barriers" in sparse_payload
        assert dense_payload["barriers"] != sparse_payload["barriers"]
        dense_payload.pop("barriers")
        sparse_payload.pop("barriers")
        assert dense_payload == sparse_payload

    def test_sparse_schedule_is_backend_invariant(self, fast_network):
        serial = _run(fast_network, "sparse", backend="serial")
        threaded = _run(fast_network, "sparse", backend="thread")
        # Stronger than fingerprint equality: the entire comparable payload
        # — barrier schedule included — matches across backends.
        assert serial.comparable_payload() == threaded.comparable_payload()


class TestDenseFallbacks:
    def test_until_pause_forces_dense_pacing(self, fast_network):
        system = _system(fast_network)
        try:
            system.schedule_submissions(_workload(system))
            partial = system.run(until=0.01)
            # Bounded segments rendezvous densely: a pause must observe
            # every shard at the same instant.
            assert partial.barrier_stream
            assert all(row[2] == "dense" for row in partial.barrier_stream)
            final = system.drain()
            assert system.check_definition1().ok
        finally:
            system.close()
        uninterrupted = _run(fast_network, "sparse")
        assert final.fingerprint() == uninterrupted.fingerprint()

    def test_migration_moves_force_dense_rows(self, fast_network):
        plan = MigrationPlan([(0.008, 1, 0), (0.014, 2, 1)])
        result = _run(fast_network, "sparse", migration=plan, max_workers=2)
        assert len(result.migration_stream) == 2
        move_barriers = {entry[0] for entry in result.migration_stream}
        by_barrier = {row[0]: row for row in result.barrier_stream}
        for barrier in move_barriers:
            # The barrier that executed a move ran a full dense rendezvous.
            assert by_barrier[barrier][2] == "dense"

    def test_migrated_sparse_matches_migrated_dense(self, fast_network):
        dense = _run(
            fast_network,
            "dense",
            migration=MigrationPlan([(0.008, 1, 0), (0.014, 2, 1)]),
            max_workers=2,
        )
        sparse = _run(
            fast_network,
            "sparse",
            migration=MigrationPlan([(0.008, 1, 0), (0.014, 2, 1)]),
            max_workers=2,
        )
        assert dense.fingerprint() == sparse.fingerprint()
        assert dense.migration_stream == sparse.migration_stream


class TestConfigurationSurface:
    def test_sparse_requires_epoch_backend(self, fast_network):
        with pytest.raises(ConfigurationError):
            _system(fast_network, backend=None)
        with pytest.raises(ConfigurationError):
            _system(fast_network, backend="shared")

    def test_unknown_barrier_mode_rejected(self, fast_network):
        with pytest.raises(ConfigurationError):
            _system(fast_network, barrier_mode="eager")

    def test_max_lag_must_be_positive(self, fast_network):
        with pytest.raises(ConfigurationError):
            _system(fast_network, max_lag=0)
