"""ShardSnapshot round trips at arbitrary barriers, on every backend.

The snapshot/restore pair was born to rehydrate driver-side twins at the end
of a process-pool run; the live-migration layer leans on it much harder —
the evicted shard's snapshot is the transfer checksum a migrating shard's
deterministic replay must reproduce, at *whatever* barrier the move happens.
This suite pins the contract that makes that safe: a snapshot taken at any
pause barrier (not just quiescence), restored onto a never-run twin built
from the same spec, reproduces every read surface — balances, observations,
result streams, broadcast counters, resident/retired settlement records and
the mid-flight compaction state (offsets, retired-outbound totals, *pending
retirements*) — byte for byte, on Serial, Thread and Process alike.
"""

import pickle

import pytest

from repro.cluster import ClusterSystem
from repro.cluster.settlement import settlement_account, settlement_issuer
from repro.common.types import Transfer
from repro.workloads.cluster_driver import (
    ClusterWorkloadConfig,
    cluster_open_loop_workload,
)

BACKENDS = ("serial", "thread", "process")
# Pause points chosen mid-workload: settlement traffic is in flight at most
# of them (the workload runs to ~0.02 plus settlement tails).
PAUSES = (0.006, 0.011, 0.016, 0.021)


def _build(fast_network, backend, seed=3):
    system = ClusterSystem(
        shard_count=2,
        replicas_per_shard=4,
        batch_size=2,
        initial_balance=500,
        network_config=fast_network,
        backend=backend,
        seed=seed,
    )
    workload = cluster_open_loop_workload(
        ClusterWorkloadConfig(
            user_count=60,
            aggregate_rate=1_500.0,
            duration=0.02,
            cross_shard_fraction=0.8,
            router=system.router,
            seed=seed,
        )
    )
    system.schedule_submissions(workload)
    return system


def _assert_round_trip(shard):
    """Snapshot -> fresh twin -> restore must reproduce every read surface."""
    snapshot = shard.snapshot()
    twin = shard.spec().build()
    twin.restore(snapshot)
    # The strongest form first: re-snapshotting the twin reproduces the
    # original snapshot exactly (node state, streams, counters, compaction
    # state — pending retirements included).
    assert twin.snapshot() == snapshot
    # And the surfaces callers actually read agree field by field.
    for pid in shard.nodes:
        assert (
            twin.nodes[pid].all_known_balances()
            == shard.nodes[pid].all_known_balances()
        )
    assert twin.observations() == shard.observations()
    assert twin.resident_settlement_records() == shard.resident_settlement_records()
    assert twin.retired_record_count() == shard.retired_record_count()
    assert twin.broadcast_instances() == shard.broadcast_instances()
    assert twin.payload_items() == shard.payload_items()
    assert [r.transfer for r in twin.result.committed] == [
        r.transfer for r in shard.result.committed
    ]
    return snapshot


class TestArbitraryBarrierRoundTrips:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trips_at_every_pause_barrier(self, fast_network, backend):
        """Snapshots taken mid-run — settlement in flight, records already
        retired, ledgers partially compacted — round-trip losslessly."""
        system = _build(fast_network, backend)
        saw_resident = False
        saw_retired_mid_run = False
        try:
            for pause in PAUSES:
                system.run(until=pause)
                for shard in system.shards:
                    snapshot = _assert_round_trip(shard)
                    # Everything that crosses a process boundary pickles.
                    assert pickle.loads(pickle.dumps(snapshot)) == snapshot
                saw_resident = saw_resident or system.resident_settlement_records() > 0
                saw_retired_mid_run = (
                    saw_retired_mid_run or system.retired_records() > 0
                )
            # The pauses must not all be vacuous: the grid catches the run
            # with settlement records resident and with compaction already
            # active — the genuinely mid-flight regimes.
            assert saw_resident
            assert saw_retired_mid_run
            result = system.run()  # drain; final barrier round-trips too
            for shard in system.shards:
                _assert_round_trip(shard)
            assert result.audit["conserved"]
        finally:
            system.close()

    def test_round_trip_preserves_mid_flight_pending_retirements(self, fast_network):
        """A retirement certificate can outrun a slow replica's validation;
        the parked transfer must survive snapshot -> restore and still
        compact when its validation lands (here: applied directly)."""
        system = _build(fast_network, "serial")
        try:
            shard = system.shards[0]
            shard.start()
            node = shard.nodes[0]
            # A retirement for an outbound record this replica has not
            # validated: retire_settled must park it.
            parked = Transfer(
                source="0", destination="x1:0", amount=7, issuer=0, sequence=1
            )
            node.retire_settled([parked])
            assert parked in node._pending_retirements
            snapshot = _assert_round_trip(shard)
            assert snapshot.nodes[0].pending_retirements == {parked}
            # The restored twin behaves like the original: the parked
            # retirement compacts the moment the record appears locally.
            twin = shard.spec().build()
            twin.restore(snapshot)
            twin_node = twin.nodes[0]
            before = twin_node.retired_records
            twin_node.hist.setdefault(parked.source, set()).add(parked)
            twin_node.retire_settled([parked])  # record now known: retires
            assert twin_node.retired_records == before + 1
        finally:
            system.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pause_snapshots_identical_across_backends(self, fast_network, backend):
        """The snapshot at a barrier is itself backend-invariant: whatever
        executed the epochs, the same pause yields the same state."""
        reference = _build(fast_network, "serial")
        other = _build(fast_network, backend)
        try:
            reference.run(until=PAUSES[1])
            other.run(until=PAUSES[1])
            for shard, twin in zip(reference.shards, other.shards):
                assert shard.snapshot() == twin.snapshot()
        finally:
            reference.close()
            other.close()


class TestSnapshotCarriesTheLifecycle:
    def test_snapshot_fields_cover_compaction_state(self, fast_network):
        """The lifecycle fields (offsets, retired outbound, counters) travel
        with the snapshot — a run with retirements restores them non-empty."""
        system = _build(fast_network, "serial")
        try:
            system.run()
            assert system.retired_records() > 0
            shard = system.shards[0]
            snapshot = shard.snapshot()
            node_snapshot = snapshot.nodes[0]
            assert node_snapshot.retired_records > 0
            assert node_snapshot.retired_outbound
            assert node_snapshot.retired_offsets
            twin = shard.spec().build()
            twin.restore(snapshot)
            assert twin.nodes[0].retired_records == node_snapshot.retired_records
            assert (
                twin.nodes[0].retired_outbound_total()
                == shard.nodes[0].retired_outbound_total()
            )
        finally:
            system.close()

    def test_mint_survives_the_round_trip_spendably(self, fast_network):
        """A certified mint applied before the snapshot is spendable state:
        the restored twin reports the credited balance and the mint in its
        dependency set."""
        system = _build(fast_network, "serial")
        try:
            shard = system.shards[1]
            shard.start()
            mint = Transfer(
                source=settlement_account(0, 2),
                destination="0",
                amount=13,
                issuer=settlement_issuer(0, 2),
                sequence=1,
            )
            for pid in sorted(shard.nodes):
                shard.nodes[pid].mint_certified_credit(mint)
            snapshot = _assert_round_trip(shard)
            twin = shard.spec().build()
            twin.restore(snapshot)
            initial = shard.initial_balances()["0"]
            assert twin.nodes[0].balance_of("0") == initial + 13
            assert mint in twin.nodes[0].deps
        finally:
            system.close()
