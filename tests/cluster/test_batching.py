"""Tests for the batched transfer node over the unchanged broadcast."""

import pytest

from repro.broadcast.secure_broadcast import payload_item_count
from repro.cluster.batching import BatchAnnouncement, BatchingTransferNode
from repro.cluster.shard import Shard
from repro.common.errors import ConfigurationError
from repro.common.types import Transfer
from repro.mp.messages import TransferAnnouncement
from repro.network.simulator import Simulator
from repro.spec.byzantine_spec import ByzantineAssetTransferChecker


def _shard(batch_size, fast_network, broadcast="bracha", initial_balance=1_000):
    simulator = Simulator()
    return simulator, Shard(
        index=0,
        simulator=simulator,
        replicas=4,
        initial_balance=initial_balance,
        broadcast=broadcast,
        batch_size=batch_size,
        network_config=fast_network,
        seed=3,
    )


def _submit_burst(shard, per_node=8, amount=1):
    # All submissions land at t=0, so the first batch is formed from a full
    # queue and the batching node exercises its coalescing path.
    for pid in range(4):
        destination = str((pid + 1) % 4)
        for index in range(per_node):
            shard.submit(time=0.0, issuer=pid, destination=destination, amount=amount)


class TestBatchAnnouncement:
    def test_item_count_feeds_generic_payload_accounting(self):
        transfers = tuple(
            TransferAnnouncement(Transfer("0", "1", 1, issuer=0, sequence=s))
            for s in (1, 2, 3)
        )
        batch = BatchAnnouncement(transfers)
        assert batch.item_count == 3
        assert payload_item_count(batch) == 3
        assert payload_item_count(transfers[0]) == 1

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchAnnouncement(())

    def test_item_count_is_memoised_not_recomputed(self):
        # The count is a stored slot fixed at construction — the O(1)
        # contract of the per-delivery stats path — and it is derived
        # accounting: a wrong constructor value is corrected, and equality,
        # hashing and the repr-based content hash see only the announcements.
        transfers = tuple(
            TransferAnnouncement(Transfer("0", "1", 1, issuer=0, sequence=s))
            for s in (1, 2)
        )
        batch = BatchAnnouncement(transfers)
        assert BatchAnnouncement(transfers, item_count=99).item_count == 2
        assert BatchAnnouncement(transfers, item_count=99) == batch
        assert hash(BatchAnnouncement(transfers, item_count=99)) == hash(batch)
        assert "item_count" not in repr(batch)

    def test_stats_count_batch_items_per_delivery(self):
        # Counter correctness end to end: the per-delivery stats path reads
        # the memoised count, so payload_items advances by the batch size.
        from repro.broadcast.secure_broadcast import BroadcastStats

        transfers = tuple(
            TransferAnnouncement(Transfer("0", "1", 1, issuer=0, sequence=s))
            for s in (1, 2, 3)
        )
        stats = BroadcastStats()
        for payload in (BatchAnnouncement(transfers), transfers[0]):
            stats.delivered += 1
            stats.payload_items += payload_item_count(payload)
        assert stats.payload_items == 4
        assert stats.delivered == 2
        assert stats.items_per_broadcast == 2.0


class TestBatchingTransferNode:
    def test_batches_amortise_broadcast_instances(self, fast_network):
        simulator, shard = _shard(batch_size=8, fast_network=fast_network)
        shard.start()
        _submit_burst(shard, per_node=8)
        simulator.run_until_quiescent()
        result = shard.finalize(simulator.now)
        assert result.committed_count == 32
        # 8 transfers per node ride at most 2 broadcast instances each
        # (the first batch forms before any queueing, so it may be short).
        assert shard.broadcast_instances() <= 12
        assert shard.payload_items() == 32

    def test_batched_run_commits_the_same_transfers_as_unbatched(self, fast_network):
        outcomes = {}
        for batch_size in (1, 8):
            simulator, shard = _shard(batch_size=batch_size, fast_network=fast_network)
            shard.start()
            _submit_burst(shard, per_node=6)
            simulator.run_until_quiescent()
            shard.finalize(simulator.now)
            outcomes[batch_size] = sorted(
                (r.transfer.issuer, r.transfer.sequence, r.transfer.destination, r.transfer.amount)
                for r in shard.result.committed
            )
        assert outcomes[1] == outcomes[8]

    def test_batched_shard_satisfies_definition_1(self, fast_network):
        simulator, shard = _shard(batch_size=4, fast_network=fast_network)
        shard.start()
        _submit_burst(shard, per_node=5)
        simulator.run_until_quiescent()
        report = ByzantineAssetTransferChecker(shard.initial_balances()).check(
            shard.observations()
        )
        assert report.ok, report.violations

    def test_unaffordable_submissions_fail_within_a_batch(self, fast_network):
        simulator, shard = _shard(batch_size=4, fast_network=fast_network, initial_balance=10)
        shard.start()
        # 3 affordable + 1 overdraft, all queued before the first batch forms.
        for amount in (4, 4, 2, 5):
            shard.submit(time=0.0, issuer=0, destination="1", amount=amount)
        simulator.run_until_quiescent()
        result = shard.finalize(simulator.now)
        assert result.committed_count == 3
        assert len(result.rejected) == 1
        assert result.rejected[0].transfer.amount == 5

    def test_batching_works_over_echo_broadcast_too(self, fast_network):
        simulator, shard = _shard(batch_size=4, fast_network=fast_network, broadcast="echo")
        shard.start()
        _submit_burst(shard, per_node=4)
        simulator.run_until_quiescent()
        result = shard.finalize(simulator.now)
        assert result.committed_count == 16
        report = ByzantineAssetTransferChecker(shard.initial_balances()).check(
            shard.observations()
        )
        assert report.ok, report.violations

    def test_batch_size_one_matches_base_node_shape(self, fast_network):
        simulator, shard = _shard(batch_size=1, fast_network=fast_network)
        assert all(
            not isinstance(node, BatchingTransferNode) for node in shard.nodes.values()
        )

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ConfigurationError):
            BatchingTransferNode(
                node_id=0,
                initial_balances={"0": 10},
                broadcast_factory=lambda **kwargs: None,
                batch_size=0,
            )
