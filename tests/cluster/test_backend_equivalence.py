"""The cross-backend equivalence harness.

The execution backends' headline guarantee is that parallelism can never
silently change protocol behaviour: for any configuration, the
:class:`~repro.cluster.result.ClusterResult` captured by a run — every
replica's per-account balances, the committed and settlement streams with
their completion times, the supply-audit verdicts and the event/message
counts — must be **byte-for-byte identical** across
``SerialBackend`` / ``ThreadBackend`` / ``ProcessPoolBackend``.  This module
asserts exactly that, over a seed × shards × batch × cross-shard-fraction
grid, via :meth:`ClusterResult.fingerprint` (canonical JSON + SHA-256) *and*
field-level payload equality (so a fingerprint regression pinpoints the
diverging field, not just "something differed").

It also pins the supporting contracts: worker-count independence (a
two-worker process pool equals the serial reference — the CI smoke), the
coincidence of the epoch-serial backend with the classic shared clock when no
settlement traffic exists, picklability of everything that crosses a process
boundary, and the worker loop itself (driven in-process through a scripted
pipe, so the subprocess code path is unit-tested and covered).
"""

import pickle

import pytest

from repro.cluster import codec as pipe_codec
from repro.cluster import ClusterSystem, ShardSpec
from repro.cluster.backends import BACKEND_NAMES, _worker_main, make_backend
from repro.cluster.settlement import (
    SettlementCertificate,
    SettlementClaim,
    SettlementVoucher,
)
from repro.common.errors import ConfigurationError
from repro.crypto.signatures import SignatureScheme
from repro.workloads.cluster_driver import (
    ClusterWorkloadConfig,
    RoutedSubmission,
    cluster_open_loop_workload,
    partition_submissions,
)

# The equivalence grid: 2 seeds x 2 shard counts x 2 batch sizes x 2
# cross-shard mixes = 16 configurations, each run on all three backends.
SEEDS = (3, 11)
SHARD_COUNTS = (2, 3)
BATCH_SIZES = (1, 4)
FRACTIONS = (0.5, 1.0)
GRID = [
    (seed, shards, batch, fraction)
    for seed in SEEDS
    for shards in SHARD_COUNTS
    for batch in BATCH_SIZES
    for fraction in FRACTIONS
]


def _run(
    fast_network,
    backend,
    seed,
    shards,
    batch,
    fraction,
    max_workers=None,
    epoch_policy=None,
):
    system = ClusterSystem(
        shard_count=shards,
        replicas_per_shard=4,
        batch_size=batch,
        broadcast="bracha",
        initial_balance=500,
        network_config=fast_network,
        backend=backend,
        epoch_policy=epoch_policy,
        max_workers=max_workers,
        seed=seed,
    )
    workload = cluster_open_loop_workload(
        ClusterWorkloadConfig(
            user_count=60,
            aggregate_rate=1_500.0,
            duration=0.02,
            zipf_skew=1.0,
            cross_shard_fraction=fraction,
            router=system.router if fraction is not None else None,
            seed=seed,
        )
    )
    system.schedule_submissions(workload)
    result = system.run()
    return system, result


class TestBackendEquivalence:
    """Serial / Thread / Process produce byte-identical ClusterResults."""

    @pytest.mark.parametrize("seed,shards,batch,fraction", GRID)
    def test_fingerprints_identical_across_backends(
        self, fast_network, seed, shards, batch, fraction
    ):
        payloads = {}
        fingerprints = {}
        for backend in BACKEND_NAMES:
            system, result = _run(fast_network, backend, seed, shards, batch, fraction)
            try:
                payloads[backend] = result.comparable_payload()
                fingerprints[backend] = result.fingerprint()
                # The runs must also be *audited* equal, not just equal:
                # every backend passes Definition 1 and conserves supply.
                report = system.check_definition1()
                assert report.ok, (backend, report.violations)
                assert result.audit["conserved"], (backend, result.audit)
                assert result.audit["fully_settled"], (backend, result.audit)
            finally:
                system.close()
        # Field-level equality first, so a regression names the field...
        assert payloads["serial"] == payloads["thread"]
        assert payloads["serial"] == payloads["process"]
        # ... and the canonical-byte equality the guarantee is stated in.
        assert fingerprints["serial"] == fingerprints["thread"] == fingerprints["process"]

    def test_settlement_actually_exercised_by_the_grid(self, fast_network):
        """The equivalence grid must not vacuously pass on settlement-free
        runs: every configuration produces cross-shard traffic, mints — and,
        with the lifecycle on by default, acknowledged retirements."""
        for seed, shards, batch, fraction in GRID:
            system, result = _run(fast_network, "serial", seed, shards, batch, fraction)
            try:
                assert system.cross_shard_submissions > 0
                assert result.settlement_stream
                assert result.audit["minted"] > 0
                assert result.retirement_stream
                assert result.retired_records > 0
            finally:
                system.close()

    def test_adaptive_epoch_with_compaction_fingerprints_identical(
        self, fast_network
    ):
        """The acceptance configuration: an AdaptiveEpochPolicy grid with the
        compaction lifecycle active, fingerprint-identical (retirement
        counters included) across all three backends."""
        from repro.cluster import AdaptiveEpochPolicy

        def policy():
            # A fresh instance per run: equality must come from determinism,
            # never from shared mutable state (the policy is stateless, this
            # proves nothing leaks through it either way).
            return AdaptiveEpochPolicy(
                initial_epoch=0.005, min_epoch=0.00125, max_epoch=0.02,
                widen_below=2, narrow_above=12,
            )

        payloads = {}
        fingerprints = {}
        for backend in BACKEND_NAMES:
            system, result = _run(
                fast_network, backend, 11, 3, 4, 1.0, epoch_policy=policy()
            )
            try:
                payloads[backend] = result.comparable_payload()
                fingerprints[backend] = result.fingerprint()
                assert result.retired_records > 0
                assert result.resident_settlement_records == 0
                assert result.audit["fully_settled"]
                assert result.audit["retirement_backed"]
                report = system.check_definition1()
                assert report.ok, (backend, report.violations)
            finally:
                system.close()
        assert payloads["serial"] == payloads["thread"]
        assert payloads["serial"] == payloads["process"]
        assert fingerprints["serial"] == fingerprints["thread"] == fingerprints["process"]

    def test_two_worker_process_pool_matches_serial(self, fast_network):
        """Worker assignment affects only where a shard's deterministic event
        sequence is computed: 3 shards on 2 workers equal the serial run."""
        serial_system, serial = _run(fast_network, "serial", 11, 3, 1, 0.7)
        process_system, process = _run(
            fast_network, "process", 11, 3, 1, 0.7, max_workers=2
        )
        try:
            assert process.comparable_payload() == serial.comparable_payload()
            assert process.fingerprint() == serial.fingerprint()
        finally:
            serial_system.close()
            process_system.close()

    def test_epoch_serial_matches_shared_clock_without_settlement_traffic(
        self, fast_network
    ):
        """With zero cross-shard payments the barriers exchange nothing, and
        the extracted SerialBackend reproduces the classic shared-clock run
        exactly — committed stream, balances and duration."""
        shared_system, shared = _run(fast_network, None, 7, 2, 1, 0.0)
        serial_system, serial = _run(fast_network, "serial", 7, 2, 1, 0.0)
        try:
            assert shared.committed_stream == serial.committed_stream
            assert shared.balances == serial.balances
            assert shared.duration == serial.duration
            assert shared.settlement_stream == serial.settlement_stream == []
        finally:
            shared_system.close()
            serial_system.close()


class TestBackendConfiguration:
    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSystem(shard_count=2, backend="gpu")
        with pytest.raises(ConfigurationError):
            make_backend("gpu")

    def test_submissions_are_rejected_once_the_session_executes(self, fast_network):
        system, _ = _run(fast_network, "serial", 3, 2, 1, 0.5)
        try:
            with pytest.raises(ConfigurationError):
                system.schedule_submissions([])
        finally:
            system.close()

    def test_shared_mode_is_the_default(self, fast_network):
        system = ClusterSystem(shard_count=2, network_config=fast_network)
        assert system.backend_name == "shared"
        assert system.scheduler is None
        assert all(shard.simulator is system.simulator for shard in system.shards)
        system.close()  # no backend resources; must be a safe no-op

    def test_epoch_mode_gives_every_shard_its_own_clock(self, fast_network):
        system = ClusterSystem(shard_count=3, network_config=fast_network, backend="serial")
        clocks = {id(shard.simulator) for shard in system.shards}
        assert len(clocks) == 3
        assert id(system.simulator) not in clocks
        system.close()


class TestEpochSchedulerEdges:
    def test_run_until_caps_the_barrier_horizon(self, fast_network):
        """A horizon mid-workload stops the barriers without losing events:
        resuming the run completes and still matches an uncapped run."""
        capped = ClusterSystem(
            shard_count=2, replicas_per_shard=4, initial_balance=500,
            network_config=fast_network, backend="serial", seed=3,
        )
        workload = cluster_open_loop_workload(
            ClusterWorkloadConfig(
                user_count=60, aggregate_rate=1_500.0, duration=0.02,
                cross_shard_fraction=0.5, router=capped.router, seed=3,
            )
        )
        capped.schedule_submissions(workload)
        partial = capped.run(until=0.01)
        assert partial.duration <= 0.01
        resumed = capped.run()  # picks up where the horizon stopped
        capped.close()
        reference_system, reference = _run(fast_network, "serial", 3, 2, 1, 0.5)
        reference_system.close()
        assert resumed.committed_stream == reference.committed_stream
        assert resumed.balances == reference.balances

    def test_event_budget_is_enforced_across_epochs(self, fast_network):
        from repro.common.errors import SimulationError

        system = ClusterSystem(
            shard_count=2, replicas_per_shard=4, initial_balance=500,
            network_config=fast_network, backend="serial", seed=3,
        )
        workload = cluster_open_loop_workload(
            ClusterWorkloadConfig(
                user_count=60, aggregate_rate=1_500.0, duration=0.02,
                cross_shard_fraction=0.5, router=system.router, seed=3,
            )
        )
        system.schedule_submissions(workload)
        with pytest.raises(SimulationError):
            system.run(max_events=50)
        system.close()

    def test_delayed_vouchers_settle_at_a_later_barrier(self, fast_network):
        """A DelayBehavior stalls one replica's vouchers past several epochs;
        settlement still completes (the other replicas quorum first) and the
        late vouchers are absorbed without effect."""
        from repro.byzantine.behaviors import DelayBehavior

        system, result = _run(fast_network, "serial", 3, 2, 1, 1.0)
        baseline_minted = result.audit["minted"]
        system.close()
        delayed = ClusterSystem(
            shard_count=2, replicas_per_shard=4, initial_balance=500,
            network_config=fast_network, backend="serial", seed=3,
        )
        delayed.settlement.set_voucher_behavior(0, 3, DelayBehavior(extra_delay=0.05))
        delayed.settlement.set_voucher_behavior(1, 3, DelayBehavior(extra_delay=0.05))
        workload = cluster_open_loop_workload(
            ClusterWorkloadConfig(
                user_count=60, aggregate_rate=1_500.0, duration=0.02,
                cross_shard_fraction=1.0, router=delayed.router, seed=3,
            )
        )
        delayed.schedule_submissions(workload)
        outcome = delayed.run()
        assert outcome.audit["minted"] == baseline_minted
        assert outcome.audit["fully_settled"]
        assert delayed.check_definition1().ok
        delayed.close()

    def test_epoch_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ClusterSystem(shard_count=2, backend="serial", epoch=0.0)

    def test_snapshot_restore_rejects_the_wrong_shard(self, fast_network):
        system = ClusterSystem(
            shard_count=2, network_config=fast_network, backend="serial", seed=3
        )
        snapshot = system.shards[0].snapshot()
        with pytest.raises(ConfigurationError):
            system.shards[1].restore(snapshot)
        system.close()


class TestSettlementWireFormatPicklability:
    """Everything that crosses a process boundary must pickle losslessly.

    Claims and certificates are clock-independent (no timestamps), so a
    value pickled in one epoch verifies unchanged in any other process at
    any later barrier.
    """

    def _claim(self):
        return SettlementClaim(
            source_shard=0, destination_shard=1, issuer=2, sequence=5, account="3", amount=42
        )

    def test_claim_voucher_certificate_round_trip(self):
        scheme = SignatureScheme(seed=9)
        claim = self._claim()
        voucher = SettlementVoucher(claim=claim, signature=scheme.keypair_for(1).sign(claim))
        certificate = SettlementCertificate(
            claim=claim,
            certificate=scheme.make_certificate(
                claim, tuple(scheme.keypair_for(pid).sign(claim) for pid in range(3))
            ),
        )
        for value in (claim, voucher, certificate):
            clone = pickle.loads(pickle.dumps(value))
            assert clone == value
        # A pickled certificate still verifies: the signatures bind to the
        # claim's content, not to any in-process identity.
        clone = pickle.loads(pickle.dumps(certificate))
        assert scheme.verify_certificate(
            clone.claim, clone.certificate, quorum_size=3,
            allowed_signers=frozenset(range(4)),
        )

    def test_spec_and_submission_round_trip(self, fast_network):
        spec = ShardSpec(index=1, replicas=4, initial_balance=100,
                         network_config=fast_network, seed=17)
        assert pickle.loads(pickle.dumps(spec)) == spec
        routed = RoutedSubmission(time=0.25, issuer=2, destination="x1:0", amount=9)
        assert pickle.loads(pickle.dumps(routed)) == routed


class _ScriptedPipe:
    """An in-process stand-in for one end of a worker pipe."""

    def __init__(self, commands):
        self._commands = list(commands)
        self.responses = []
        self.closed = False

    def recv_bytes(self):
        if not self._commands:
            raise EOFError
        # The real pipe carries codec frames; scripted commands round-trip
        # through the same encoder the driver uses.
        return pipe_codec.encode(self._commands.pop(0))

    def send_bytes(self, payload):
        self.responses.append(pipe_codec.decode(payload))

    def close(self):
        self.closed = True


class TestWorkerLoop:
    """Drive the process-pool worker's command loop in-process.

    The loop normally runs in a subprocess (invisible to coverage and hard
    to fail deliberately); a scripted pipe exercises every command — and the
    error path — right here.
    """

    def _spec_and_submissions(self, fast_network):
        spec = ShardSpec(index=0, replicas=4, initial_balance=100,
                         network_config=fast_network, seed=5)
        submissions = {0: [RoutedSubmission(time=0.001, issuer=0, destination="1", amount=7)]}
        return spec, submissions

    def test_advance_mint_snapshot_stop(self, fast_network):
        spec, submissions = self._spec_and_submissions(fast_network)
        pipe = _ScriptedPipe(
            [
                ("advance", 1.0, None),
                ("mint", 1.0, []),
                ("snapshot",),
                ("stop",),
            ]
        )
        _worker_main(pipe, [spec], submissions)
        statuses = [status for status, _ in pipe.responses]
        assert statuses == ["ok", "ok", "ok", "ok"]
        reports = pipe.responses[0][1]
        assert reports[0].pending_events == 0
        assert reports[0].processed_events > 0
        snapshot = pipe.responses[2][1][0]
        # The scheduled transfer committed inside the worker loop.
        assert len(snapshot.committed) == 1
        assert snapshot.committed[0].transfer.amount == 7
        assert pipe.closed

    def test_unknown_and_failing_commands_report_errors(self, fast_network):
        spec, submissions = self._spec_and_submissions(fast_network)
        pipe = _ScriptedPipe(
            [
                ("warp", 9),
                ("advance", 1.0, 1),  # event budget of 1 must blow up
                ("stop",),
            ]
        )
        _worker_main(pipe, [spec], submissions)
        statuses = [status for status, _ in pipe.responses]
        assert statuses == ["error", "error", "ok"]
        assert "unknown worker command" in pipe.responses[0][1]
        assert "event budget" in pipe.responses[1][1]

    def test_eof_terminates_the_loop(self, fast_network):
        spec, submissions = self._spec_and_submissions(fast_network)
        pipe = _ScriptedPipe([])  # recv raises EOFError immediately
        _worker_main(pipe, [spec], submissions)
        assert pipe.responses == []
        assert pipe.closed


class TestPartitionedDriver:
    def test_partition_preserves_order_and_counts_cross_shard(self, fast_network):
        system = ClusterSystem(shard_count=2, network_config=fast_network, seed=11)
        workload = cluster_open_loop_workload(
            ClusterWorkloadConfig(
                user_count=60, aggregate_rate=1_500.0, duration=0.02,
                cross_shard_fraction=0.5, router=system.router, seed=11,
            )
        )
        per_shard, cross = partition_submissions(workload, system.router)
        assert set(per_shard) <= {0, 1}
        assert sum(len(routed) for routed in per_shard.values()) == len(workload)
        expected_cross = sum(
            1 for s in workload
            if system.router.route(s.source_user, s.destination_user).cross_shard
        )
        assert cross == expected_cross > 0
        for routed in per_shard.values():
            times = [submission.time for submission in routed]
            assert times == sorted(times)
