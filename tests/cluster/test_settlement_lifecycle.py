"""The settlement lifecycle: acks, retirement certificates, ledger compaction.

Unit tests of the new lifecycle pieces (the relay's ack return leg, the
:class:`CompactionGate` watermark machine, node-level record retirement) plus
the end-to-end contracts: fully-acknowledged outbound records leave the
ledgers while every balance stays intact, the extended supply identity holds
at every instant, compaction can be switched off (the negative control), the
extended spec/snapshot state pickles and rehydrates, and pause/resume equals
a continuous run with compaction active.
"""

import pickle

import pytest

from repro.cluster import ClusterSystem, ShardSpec
from repro.cluster.settlement import (
    CompactionGate,
    RetirementCertificate,
    SettlementAck,
    SettlementAckClaim,
    SettlementConfig,
    SettlementRelay,
)
from repro.common.errors import ConfigurationError
from repro.common.types import Transfer
from repro.crypto.signatures import SignatureScheme
from repro.network.simulator import Simulator
from repro.workloads.cluster_driver import (
    ClusterSubmission,
    ClusterWorkloadConfig,
    cluster_open_loop_workload,
)


def _system(fast_network, shards=2, seed=11, **kwargs):
    return ClusterSystem(
        shard_count=shards,
        replicas_per_shard=4,
        broadcast="bracha",
        network_config=fast_network,
        seed=seed,
        **kwargs,
    )


def _workload(seed=5, rate=3_000.0, duration=0.03, users=400, **kwargs):
    return cluster_open_loop_workload(
        ClusterWorkloadConfig(
            user_count=users,
            aggregate_rate=rate,
            duration=duration,
            zipf_skew=1.0,
            seed=seed,
            **kwargs,
        )
    )


def _user_on_shard(router, shard):
    return next(u for u in range(100_000) if router.shard_of(u) == shard)


def _ack_claim(sequence=1):
    return SettlementAckClaim(
        source_shard=0, destination_shard=1, issuer=0, sequence=sequence
    )


def _relay(source_scheme=None, dest_scheme=None):
    simulator = Simulator()
    source_scheme = source_scheme or SignatureScheme(seed=7)
    dest_scheme = dest_scheme or SignatureScheme(seed=8)
    relay = SettlementRelay(
        source_shard=0,
        destination_shard=1,
        simulator=simulator,
        scheme=source_scheme,
        quorum_size=3,
        allowed_signers=frozenset(range(4)),
        config=SettlementConfig(),
        ack_scheme=dest_scheme,
        ack_quorum_size=3,
        ack_allowed_signers=frozenset(range(4)),
    )
    return relay, simulator, dest_scheme


def _ack(scheme, signer, claim):
    return SettlementAck(claim=claim, signature=scheme.keypair_for(signer).sign(claim))


class TestRelayAckLeg:
    def test_retirement_certificate_assembles_exactly_at_ack_quorum(self):
        relay, simulator, scheme = _relay()
        delivered = []
        relay.subscribe_retirement(delivered.append)
        claim = _ack_claim()
        for signer in (0, 1):
            assert relay.submit_ack(_ack(scheme, signer, claim))
        assert not relay.retirement_certificates and relay.pending_acks == 1
        assert relay.submit_ack(_ack(scheme, 2, claim))
        assert len(relay.retirement_certificates) == 1
        assert relay.pending_acks == 0
        assert relay.certified_watermark(0) == 1
        simulator.run_until_quiescent()
        assert [c.claim for c in delivered] == [claim]

    def test_acks_verify_against_the_destination_shards_keys(self):
        """The source shard's own keys (or any rogue keys) cannot acknowledge."""
        relay, _, _ = _relay()
        source_scheme = relay.scheme
        rogue = SignatureScheme(seed=999)
        claim = _ack_claim()
        for scheme in (source_scheme, rogue):
            for signer in range(3):
                assert not relay.submit_ack(_ack(scheme, signer, claim))
        assert relay.acks_rejected == 6
        assert relay.pending_acks == 0
        assert not relay.retirement_certificates

    def test_misrouted_and_foreign_signer_acks_are_rejected(self):
        relay, _, scheme = _relay()
        wrong_pair = SettlementAckClaim(
            source_shard=1, destination_shard=0, issuer=0, sequence=1
        )
        assert not relay.submit_ack(_ack(scheme, 0, wrong_pair))
        assert not relay.submit_ack(_ack(scheme, 9, _ack_claim()))  # not a replica
        assert not relay.submit_ack(_ack(scheme, 0, _ack_claim(sequence=0)))
        assert relay.acks_rejected == 3

    def test_late_acks_for_certified_watermarks_are_noops(self):
        relay, _, scheme = _relay()
        claim = _ack_claim()
        for signer in (0, 1, 2):
            relay.submit_ack(_ack(scheme, signer, claim))
        assert len(relay.retirement_certificates) == 1
        assert relay.submit_ack(_ack(scheme, 3, claim))  # late straggler
        assert len(relay.retirement_certificates) == 1
        assert relay.pending_acks == 0

    def test_a_certified_watermark_subsumes_lower_pending_acks(self):
        """Replica acks trickle out of order; certifying watermark 2 drops
        the now-dead pending entries for watermark 1 (self-compaction)."""
        relay, _, scheme = _relay()
        first, second = _ack_claim(1), _ack_claim(2)
        relay.submit_ack(_ack(scheme, 0, first))
        relay.submit_ack(_ack(scheme, 1, first))
        for signer in (0, 1, 2):
            relay.submit_ack(_ack(scheme, signer, second))
        assert relay.certified_watermark(0) == 2
        assert relay.pending_acks == 0  # watermark-1 entries were dropped


class TestCompactionGate:
    def _gate(self, records=None, retired=None):
        scheme = SignatureScheme(seed=8)
        retired = retired if retired is not None else []
        records = records or {
            sequence: Transfer("0", "x1:2", 5, issuer=0, sequence=sequence)
            for sequence in range(1, 6)
        }

        def verify(claim, certificate):
            return scheme.verify_certificate(
                claim, certificate, quorum_size=3, allowed_signers=frozenset(range(4))
            )

        def lookup(claim, first_sequence):
            span = range(first_sequence, claim.sequence + 1)
            if any(sequence not in records for sequence in span):
                return None
            return [records.pop(sequence) for sequence in span]

        gate = CompactionGate(0, verify, lookup, retired.extend)
        return gate, scheme, records, retired

    def _certificate(self, scheme, claim):
        signatures = tuple(scheme.keypair_for(pid).sign(claim) for pid in range(3))
        return RetirementCertificate(
            claim=claim, certificate=scheme.make_certificate(claim, signatures)
        )

    def test_watermark_advance_retires_the_covered_prefix(self):
        gate, scheme, records, retired = self._gate()
        assert gate.receive(self._certificate(scheme, _ack_claim(2)))
        assert [t.sequence for t in retired] == [1, 2]
        assert gate.watermark(1, 0) == 2
        assert gate.retired_claims == 2
        assert gate.retired_amount == 10
        # A later watermark only retires the *new* span.
        assert gate.receive(self._certificate(scheme, _ack_claim(4)))
        assert [t.sequence for t in retired] == [1, 2, 3, 4]
        assert sorted(records) == [5]

    def test_stale_watermarks_are_rejected_and_retire_nothing(self):
        gate, scheme, _, retired = self._gate()
        assert gate.receive(self._certificate(scheme, _ack_claim(3)))
        before = list(retired)
        for stale in (1, 2, 3):
            assert not gate.receive(self._certificate(scheme, _ack_claim(stale)))
            assert gate.rejected[-1][1] == "stale retirement watermark"
        assert retired == before

    def test_forged_and_under_quorum_certificates_are_rejected(self):
        gate, scheme, _, retired = self._gate()
        claim = _ack_claim(2)
        rogue = SignatureScheme(seed=999)
        forged = RetirementCertificate(
            claim=claim,
            certificate=rogue.make_certificate(
                claim, tuple(rogue.keypair_for(pid).sign(claim) for pid in range(3))
            ),
        )
        under = RetirementCertificate(
            claim=claim,
            certificate=scheme.make_certificate(
                claim, tuple(scheme.keypair_for(pid).sign(claim) for pid in range(2))
            ),
        )
        for bogus in (forged, under):
            assert not gate.receive(bogus)
            assert gate.rejected[-1][1] == "invalid ack quorum certificate"
        assert retired == []
        assert gate.watermark(1, 0) == 0

    def test_misrouted_certificates_are_rejected(self):
        gate, scheme, _, retired = self._gate()
        foreign = SettlementAckClaim(
            source_shard=7, destination_shard=1, issuer=0, sequence=1
        )
        assert not gate.receive(self._certificate(scheme, foreign))
        assert gate.rejected[-1][1] == "misrouted retirement certificate"
        assert retired == []

    def test_unknown_records_refuse_to_retire(self):
        """A watermark beyond anything recorded consumes nothing — the
        defensive guard behind the quorum argument."""
        gate, scheme, records, retired = self._gate()
        assert not gate.receive(self._certificate(scheme, _ack_claim(9)))
        assert gate.rejected[-1][1] == "unknown settlement records"
        assert retired == []
        assert len(records) == 5  # lookup consumed nothing
        assert gate.watermark(1, 0) == 0


class TestNodeRetirement:
    def _node(self, fast_network):
        system = _system(fast_network, seed=3)
        system.start()
        return system, system.shards[0].nodes[0]

    def test_retiring_a_validated_record_compacts_and_preserves_balances(
        self, fast_network
    ):
        system = _system(fast_network, seed=3)
        a = _user_on_shard(system.router, 0)
        b = _user_on_shard(system.router, 1)
        # Compaction off: the record stays resident so we can retire by hand.
        parked = _system(
            fast_network, seed=3, settlement_config=SettlementConfig(compaction=False)
        )
        parked.schedule_submissions(
            [ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=9)]
        )
        parked.run()
        node = parked.shards[0].nodes[0]
        outbound_account = next(
            account for account in node.hist if account.startswith("x")
        )
        record = next(iter(node.hist[outbound_account]))
        balances_before = node.all_known_balances()
        node.retire_settled([record])
        assert node.retired_records == 1
        assert parked.shards[0].resident_settlement_records() == 0
        assert node.retired_outbound_total() == 9
        balances_after = node.all_known_balances()
        # The outbound account vanished; every other balance is untouched.
        assert outbound_account not in balances_after
        balances_before.pop(outbound_account)
        assert balances_after == balances_before

    def test_retirement_of_an_unvalidated_record_waits_for_validation(
        self, fast_network
    ):
        system, node = self._node(fast_network)
        ghost = Transfer("0", "x1:2", 5, issuer=0, sequence=1)
        node.retire_settled([ghost])
        assert node.retired_records == 0
        assert ghost in node._pending_retirements
        # Balances are untouched while the retirement is parked.
        assert node.balance_of("0") == 1_000_000

    def test_retirement_is_idempotent_per_record(self, fast_network):
        system, node = self._node(fast_network)
        record = Transfer("0", "x1:2", 5, issuer=0, sequence=1)
        node.hist.setdefault("0", set()).add(record)
        node.hist.setdefault("x1:2", set()).add(record)
        node.retire_settled([record])
        assert node.retired_records == 1
        # A duplicate retire command parks (the record is gone from hist)
        # rather than double-compacting the balance.
        node.retire_settled([record])
        assert node.retired_records == 1
        assert node.retired_outbound_total() == 5


class TestLifecycleEndToEnd:
    def test_quiescent_ledgers_carry_no_settlement_history(self, fast_network):
        system = _system(fast_network)
        system.schedule_submissions(_workload())
        system.run()
        audit = system.supply_audit()
        assert audit.minted > 0
        assert audit.fully_retired
        assert system.resident_settlement_records() == 0
        assert system.retired_records() > 0
        # Every replica of every source shard compacted identically.
        for shard in system.shards:
            counts = {pid: node.retired_records for pid, node in shard.nodes.items()}
            assert len(set(counts.values())) == 1
        report = system.check_definition1()
        assert report.ok, report.violations

    def test_identity_holds_at_every_sampled_instant(self, fast_network):
        system = _system(fast_network, shards=3)
        system.schedule_submissions(_workload())
        expected = 3 * 4 * 1_000_000
        for step in range(1, 13):
            system.run(until=step * 0.004)
            audit = system.supply_audit()
            assert audit.total == expected, f"identity broken at step {step}"
            assert audit.retirement_backed
        system.run()
        assert system.supply_audit().fully_retired

    def test_compaction_off_keeps_every_outbound_record(self, fast_network):
        """The negative control: without the lifecycle, history accumulates."""
        system = _system(
            fast_network, settlement_config=SettlementConfig(compaction=False)
        )
        system.schedule_submissions(_workload())
        system.run()
        audit = system.supply_audit()
        assert audit.minted > 0
        assert audit.fully_settled  # settlement itself is untouched
        assert audit.retired == 0
        assert audit.outbound == audit.minted
        assert system.retired_records() == 0
        assert system.resident_settlement_records() > 0
        assert system.settlement.acks_dispatched == 0
        assert system.check_definition1().ok

    def test_retirement_stream_is_deterministic_per_seed(self, fast_network):
        def run_once():
            system = _system(fast_network)
            system.schedule_submissions(_workload())
            system.run()
            return system.retirement_signature()

        first, second = run_once(), run_once()
        assert first == second
        assert first  # the lifecycle actually ran

    def test_settlement_latency_stats_accumulate(self, fast_network):
        system = _system(fast_network)
        system.schedule_submissions(_workload())
        system.run()
        samples, average, worst = system.settlement.settlement_latency()
        assert samples > 0
        assert 0 < average <= worst


class TestLifecycleStateTravel:
    """Satellite: the extended spec/snapshot state crosses process boundaries."""

    def test_extended_snapshot_round_trips_through_pickle(self, fast_network):
        system = _system(fast_network, seed=7, backend="serial")
        workload = _workload(seed=7, users=60, rate=1_500.0, duration=0.02)
        system.schedule_submissions(workload)
        system.run()
        shard = system.shards[0]
        snapshot = shard.snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.index == snapshot.index
        for pid, node_snapshot in snapshot.nodes.items():
            assert clone.nodes[pid].retired_offsets == node_snapshot.retired_offsets
            assert clone.nodes[pid].retired_outbound == node_snapshot.retired_outbound
            assert (
                clone.nodes[pid].pending_retirements
                == node_snapshot.pending_retirements
            )
            assert clone.nodes[pid].retired_records == node_snapshot.retired_records
        system.close()

    def test_spec_round_trips_and_rebuilds_lifecycle_capable_shards(
        self, fast_network
    ):
        spec = ShardSpec(index=1, replicas=4, initial_balance=100,
                         network_config=fast_network, seed=17)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        shard = clone.build()
        assert shard.nodes[0].retired_records == 0
        assert shard.resident_settlement_records() == 0

    def test_restore_rehydrates_retirement_state(self, fast_network):
        source = _system(fast_network, seed=7, backend="serial")
        workload = _workload(seed=7, users=60, rate=1_500.0, duration=0.02)
        source.schedule_submissions(workload)
        source.run()
        assert source.retired_records() > 0
        snapshot = source.shards[0].snapshot()
        source.close()

        twin_system = _system(fast_network, seed=7, backend="serial")
        twin = twin_system.shards[0]
        twin.restore(snapshot)
        assert twin.retired_record_count() == snapshot.nodes[0].retired_records
        expected_resident = sum(
            len(records)
            for account, records in snapshot.nodes[0].hist.items()
            if account.startswith("x")
        )
        assert twin.resident_settlement_records() == expected_resident
        assert (
            twin.nodes[0].retired_outbound_total()
            == sum(snapshot.nodes[0].retired_outbound.values())
        )
        twin_system.close()

    def test_pause_after_the_final_exchange_does_not_strand_commands(
        self, fast_network
    ):
        """Regression: pausing right after a barrier exchange that applied
        mint/retirement commands used to strand them — the resumed run's
        quiescence check read pre-application reports and exited with the
        retirement (or worse, the mint) never executed."""

        def run_paused(until):
            system = ClusterSystem(
                shard_count=2, replicas_per_shard=4, initial_balance=500,
                network_config=fast_network, backend="serial", seed=3,
            )
            a = _user_on_shard(system.router, 0)
            b = _user_on_shard(system.router, 1)
            system.schedule_submissions(
                [ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=9)]
            )
            system.run(until=until)
            result = system.run()
            return system, result

        continuous_system = ClusterSystem(
            shard_count=2, replicas_per_shard=4, initial_balance=500,
            network_config=fast_network, backend="serial", seed=3,
        )
        a = _user_on_shard(continuous_system.router, 0)
        b = _user_on_shard(continuous_system.router, 1)
        continuous_system.schedule_submissions(
            [ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=9)]
        )
        continuous = continuous_system.run()
        continuous_system.close()
        assert continuous.retired_records == 1

        # Sweep pause points across the whole lifecycle window, including the
        # instants right after the mint and retirement exchanges.
        for until in (0.005, 0.01, 0.015, 0.02, 0.025, 0.03):
            system, resumed = run_paused(until)
            try:
                audit = system.supply_audit()
                assert audit.fully_settled, f"mint stranded at until={until}"
                assert audit.fully_retired, f"retirement stranded at until={until}"
                assert resumed.fingerprint() == continuous.fingerprint(), (
                    f"pause at until={until} diverged from the continuous run"
                )
            finally:
                system.close()

    def test_pause_resume_equals_continuous_run_with_compaction(self, fast_network):
        """Satellite regression: the epoch grid pauses and resumes without
        perturbing the compaction lifecycle."""

        def build():
            system = ClusterSystem(
                shard_count=2, replicas_per_shard=4, initial_balance=500,
                network_config=fast_network, backend="serial", seed=3,
            )
            workload = cluster_open_loop_workload(
                ClusterWorkloadConfig(
                    user_count=60, aggregate_rate=1_500.0, duration=0.02,
                    cross_shard_fraction=1.0, router=system.router, seed=3,
                )
            )
            system.schedule_submissions(workload)
            return system

        paused = build()
        paused.run(until=0.008)
        paused.run(until=0.015)
        resumed = paused.run()
        continuous_system = build()
        continuous = continuous_system.run()
        try:
            assert resumed.comparable_payload() == continuous.comparable_payload()
            assert resumed.fingerprint() == continuous.fingerprint()
            assert resumed.retired_records and resumed.retired_records > 0
            assert resumed.retirement_stream == continuous.retirement_stream
        finally:
            paused.close()
            continuous_system.close()


class TestLifecycleConfiguration:
    def test_negative_ack_delay_is_rejected(self):
        with pytest.raises(ConfigurationError):
            SettlementConfig(ack_delay=-0.5).validate()

    def test_lifecycle_exports_are_public(self):
        import repro.cluster as cluster

        for name in (
            "SettlementAck",
            "SettlementAckClaim",
            "RetirementCertificate",
            "CompactionGate",
        ):
            assert hasattr(cluster, name)


class TestRelayJournalCompaction:
    """Driver-side relay journals compact behind the retirement watermark.

    Before this layer the ``certificates``/``delivered`` journals grew with
    every certificate ever delivered (audit metadata, unbounded exactly like
    the pre-lifecycle ledgers).  Now a certified retirement watermark
    evicts everything it subsumes, while the cumulative accumulators —
    amounts, counts, provisions, signature streams — keep answering for the
    full history.
    """

    def _claim(self, sequence, amount=5):
        from repro.cluster.settlement import SettlementClaim

        return SettlementClaim(
            source_shard=0, destination_shard=1, issuer=0,
            sequence=sequence, account="2", amount=amount,
        )

    def _deliver_claims(self, relay, scheme, sequences):
        from repro.cluster.settlement import SettlementVoucher

        for sequence in sequences:
            claim = self._claim(sequence)
            for signer in (0, 1, 2):
                relay.submit_voucher(
                    SettlementVoucher(
                        claim=claim,
                        signature=relay.scheme.keypair_for(signer).sign(claim),
                    )
                )
        relay.simulator.run_until_quiescent()

    def test_watermark_evicts_subsumed_certificates(self):
        relay, simulator, dest_scheme = _relay()
        self._deliver_claims(relay, dest_scheme, (1, 2, 3))
        assert len(relay.certificates) == len(relay.delivered) == 3
        # Acknowledge through sequence 2: entries 1 and 2 are pure history.
        claim = _ack_claim(sequence=2)
        for signer in (0, 1, 2):
            relay.submit_ack(_ack(dest_scheme, signer, claim))
        assert [c.claim.sequence for c in relay.certificates] == [3]
        assert [c.claim.sequence for c in relay.delivered] == [3]
        # The cumulative surfaces still answer for the full history.
        assert relay.certificates_total == relay.delivered_total == 3
        assert relay.delivered_amount_total == 15
        assert len(relay.delivered_signature()) == 3
        assert sum(relay.provisions().values()) == 15

    def test_newer_watermark_keeps_only_itself_per_stream(self):
        relay, simulator, dest_scheme = _relay()
        self._deliver_claims(relay, dest_scheme, (1, 2, 3))
        for sequence in (1, 2, 3):
            claim = _ack_claim(sequence=sequence)
            for signer in (0, 1, 2):
                relay.submit_ack(_ack(dest_scheme, signer, claim))
        simulator.run_until_quiescent()
        # All three watermarks certified and delivered; only the newest
        # stays journaled — journal residency is one watermark per stream.
        assert [r.claim.sequence for r in relay.retirement_certificates] == [3]
        assert [r.claim.sequence for r in relay.retirements_delivered] == [3]
        assert relay.retirements_delivered_total == 3
        assert len(relay.retirement_delivery_signature()) == 3
        assert relay.resident_journal_records == 2  # assembled + delivered

    def test_vouchers_below_the_retirement_watermark_are_absorbed(self):
        """A straggler (or Byzantine re-signer) vouchering a claim whose
        stream already retired past it must not re-open a pending entry:
        compaction dropped the claim from ``_assembled``, and without the
        watermark guard each such voucher would park one dead dict in
        ``_pending`` forever — history-proportional growth and phantom
        'withheld settlement' in the metrics."""
        from repro.cluster.settlement import SettlementVoucher

        relay, simulator, dest_scheme = _relay()
        self._deliver_claims(relay, dest_scheme, (1, 2))
        claim = _ack_claim(sequence=2)
        for signer in (0, 1, 2):
            relay.submit_ack(_ack(dest_scheme, signer, claim))
        assert relay.certified_watermark(0) == 2
        assert relay.delivered == []  # compacted behind the watermark
        # Every replica re-vouchers the retired claim 1: absorbed, no
        # pending entry, no new certificate, journals untouched.
        retired_claim = self._claim(1)
        for signer in range(4):
            assert relay.submit_voucher(
                SettlementVoucher(
                    claim=retired_claim,
                    signature=relay.scheme.keypair_for(signer).sign(retired_claim),
                )
            )
        assert relay.pending_claims == 0
        assert relay.certificates_total == 2  # nothing re-assembled
        assert relay.certificates == []

    def test_compaction_purges_dead_under_quorum_pending_entries(self):
        """A Byzantine variant claim (same stream slot, different content)
        parks below quorum while the genuine claim settles; once the stream
        retires past the slot the variant can never certify — compaction
        must drop it from ``_pending`` or one dead dict per retired claim
        accumulates for the run's lifetime."""
        from repro.cluster.settlement import SettlementVoucher

        relay, simulator, dest_scheme = _relay()
        self._deliver_claims(relay, dest_scheme, (1, 2))
        variant = self._claim(1, amount=999)  # same slot, inflated amount
        assert relay.submit_voucher(
            SettlementVoucher(
                claim=variant, signature=relay.scheme.keypair_for(3).sign(variant)
            )
        )
        assert relay.pending_claims == 1
        claim = _ack_claim(sequence=2)
        for signer in (0, 1, 2):
            relay.submit_ack(_ack(dest_scheme, signer, claim))
        assert relay.certified_watermark(0) == 2
        assert relay.pending_claims == 0  # the dead variant went with the stream

    def test_shared_clock_mode_buffers_no_latency_samples(self, fast_network):
        """The pending-sample buffer feeds the epoch scheduler's drain; the
        shared clock has no scheduler, so nothing may accumulate there while
        the aggregate latency figures still report."""
        system = _system(fast_network)  # classic shared-clock mode
        a = _user_on_shard(system.router, 0)
        b = _user_on_shard(system.router, 1)
        system.schedule_submissions(
            [ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=3)]
        )
        system.run()
        try:
            samples, average, worst = system.settlement.settlement_latency()
            assert samples > 0 and worst >= average > 0
            assert system.settlement.settlement_latency_p95() > 0
            assert system.settlement._latency_pending == []
        finally:
            system.close()

    def test_compaction_off_preserves_the_full_journals(self):
        relay, simulator, dest_scheme = _relay()
        relay.config.compaction = False
        self._deliver_claims(relay, dest_scheme, (1, 2, 3))
        for sequence in (1, 2, 3):
            claim = _ack_claim(sequence=sequence)
            for signer in (0, 1, 2):
                relay.submit_ack(_ack(dest_scheme, signer, claim))
        simulator.run_until_quiescent()
        # The negative control: journals keep the whole history.
        assert len(relay.certificates) == len(relay.delivered) == 3
        assert len(relay.retirement_certificates) == 3
        assert len(relay.retirements_delivered) == 3

    def test_end_to_end_journals_track_the_in_flight_window(self, fast_network):
        """A full cross-shard run compacts every delivered certificate by
        quiescence; only the per-stream retirement watermarks stay."""
        system = _system(fast_network, backend="serial")
        a = _user_on_shard(system.router, 0)
        b = _user_on_shard(system.router, 1)
        system.schedule_submissions(
            [
                ClusterSubmission(time=0.001 * k, source_user=a, destination_user=b, amount=1)
                for k in range(1, 6)
            ]
        )
        system.run()
        try:
            fabric = system.settlement
            assert fabric.certificates_delivered() > 0
            for relay in fabric.relays:
                assert relay.certificates == []
                assert relay.delivered == []
                assert len(relay.retirements_delivered) <= 1  # one stream here
            # The audit surfaces survived compaction: delivered amounts match
            # minted balances, signatures cover the full history.
            audit = system.supply_audit()
            assert audit.ledger_matches_relay
            assert len(system.settlement_signature()) == fabric.certificates_delivered()
            assert system.check_definition1().ok
        finally:
            system.close()

    def test_fingerprint_is_identical_with_and_without_resident_journals(
        self, fast_network
    ):
        """Compaction is memory management, not behaviour: the canonical
        fingerprint (which reads the signature streams, never the resident
        journals) is unchanged by it."""
        def run(compaction):
            system = _system(
                fast_network,
                backend="serial",
                settlement_config=SettlementConfig(compaction=compaction),
            )
            workload = _workload(cross_shard_fraction=0.8, router=system.router)
            system.schedule_submissions(workload)
            result = system.run()
            stream = list(result.settlement_stream)
            resident = system.settlement.resident_journal_records()
            system.close()
            return stream, resident

        with_compaction, resident_on = run(True)
        without, resident_off = run(False)
        assert with_compaction == without
        assert resident_on < resident_off
