"""Integration and determinism tests for the cluster façade."""

import pytest

from repro.cluster import ClusterSystem
from repro.common.errors import ConfigurationError
from repro.workloads.cluster_driver import (
    ClusterSubmission,
    ClusterWorkloadConfig,
    cluster_open_loop_workload,
)


def _workload(seed=5, rate=3_000.0, duration=0.03, users=400):
    return cluster_open_loop_workload(
        ClusterWorkloadConfig(
            user_count=users,
            aggregate_rate=rate,
            duration=duration,
            zipf_skew=1.0,
            seed=seed,
        )
    )


def _system(fast_network, shards=2, batch=1, seed=11, **kwargs):
    return ClusterSystem(
        shard_count=shards,
        replicas_per_shard=4,
        batch_size=batch,
        broadcast="bracha",
        network_config=fast_network,
        seed=seed,
        **kwargs,
    )


class TestClusterSystem:
    def test_all_submissions_commit_and_definition_1_holds(self, fast_network):
        system = _system(fast_network, shards=2)
        workload = _workload()
        scheduled = system.schedule_submissions(workload)
        result = system.run()
        assert scheduled == len(workload)
        assert result.committed_count == scheduled
        assert not result.rejected
        report = system.check_definition1()
        assert report.ok, report.violations
        assert report.checked_transfers > 0
        assert len(report.shard_reports) == 2

    def test_money_is_conserved_cluster_wide(self, fast_network):
        initial = 5_000
        system = _system(fast_network, shards=3, initial_balance=initial)
        system.schedule_submissions(_workload())
        system.run()
        expected = 3 * 4 * initial  # shards x replicas x initial balance
        assert system.total_supply() == expected

    def test_every_shard_receives_traffic(self, fast_network):
        system = _system(fast_network, shards=2)
        system.schedule_submissions(_workload())
        result = system.run()
        assert all(count > 0 for count in result.per_shard_committed())
        assert result.shard_count == 2

    def test_batched_cluster_commits_everything_with_fewer_messages(self, fast_network):
        workload = _workload(rate=6_000.0)
        unbatched = _system(fast_network, shards=2, batch=1)
        unbatched.schedule_submissions(workload)
        plain = unbatched.run()
        batched = _system(fast_network, shards=2, batch=8)
        batched.schedule_submissions(workload)
        coalesced = batched.run()
        assert coalesced.committed_count == plain.committed_count == len(workload)
        assert coalesced.messages_sent < plain.messages_sent
        assert batched.check_definition1().ok

    def test_result_mirrors_system_result_api(self, fast_network):
        from repro.eval.metrics import summarize_result

        system = _system(fast_network)
        system.schedule_submissions(_workload())
        result = system.run()
        summary = summarize_result("cluster", 8, result)
        assert summary.committed == result.committed_count
        assert summary.throughput == pytest.approx(result.throughput)
        assert summary.messages_sent == result.messages_sent
        assert result.messages_per_commit > 0
        assert result.average_latency > 0
        assert 1.0 <= result.load_imbalance() < 4.0

    def test_rejects_degenerate_cluster(self, fast_network):
        with pytest.raises(ConfigurationError):
            ClusterSystem(shard_count=0)
        with pytest.raises(ConfigurationError):
            ClusterSystem(shard_count=2, replicas_per_shard=3)
        with pytest.raises(ConfigurationError):
            ClusterSystem(shard_count=2, batch_size=0)


class TestCrossShardRoundTrip:
    """A pays B across shards, B spends the received funds onwards and back.

    The amounts are chosen so B's onward spend *exceeds* its initial balance:
    it can only commit because the settlement relay minted A's payment into
    B's account.  This is the end-to-end proof that cross-shard money is
    spendable at the destination, not merely recorded.
    """

    def _users(self, router):
        a = next(u for u in range(100_000) if router.shard_of(u) == 0)
        b = next(u for u in range(100_000) if router.shard_of(u) == 1)
        c = next(
            u
            for u in range(100_000)
            if router.shard_of(u) == 1
            and router.local_account_of(u) != router.local_account_of(b)
        )
        return a, b, c

    def _run_round_trip(self, fast_network, seed=31):
        system = ClusterSystem(
            shard_count=2,
            replicas_per_shard=4,
            broadcast="bracha",
            initial_balance=10,
            network_config=fast_network,
            seed=seed,
        )
        a, b, c = self._users(system.router)
        system.schedule_submissions(
            [
                # A (shard 0) pays B (shard 1) ...
                ClusterSubmission(time=0.001, source_user=a, destination_user=b, amount=9),
                # ... B spends more than its initial 10 to C (shard 1) ...
                ClusterSubmission(time=0.05, source_user=b, destination_user=c, amount=15),
                # ... and sends the rest back to A (shard 0).
                ClusterSubmission(time=0.09, source_user=b, destination_user=a, amount=3),
            ]
        )
        result = system.run()
        return system, result, (a, b, c)

    def test_received_funds_round_trip_and_audit_clean(self, fast_network):
        system, result, (a, b, c) = self._run_round_trip(fast_network)
        assert result.committed_count == 3
        assert not result.rejected
        router = system.router
        balances = {
            user: system.shards[router.shard_of(user)]
            .nodes[0]
            .balance_of(router.local_account_of(user))
            for user in (a, b, c)
        }
        assert balances[b] == 10 + 9 - 15 - 3  # = 1: B spent what it received
        report = system.check_definition1()
        assert report.ok, report.violations
        assert report.conservation.fully_settled
        # Two settlement legs: A->B (shard 0 -> 1) and B->A (shard 1 -> 0).
        assert len(system.settlement_signature()) == 2

    def test_round_trip_is_deterministic_per_seed(self, fast_network):
        first, first_result, users = self._run_round_trip(fast_network)
        second, second_result, _ = self._run_round_trip(fast_network)
        assert first.committed_signature() == second.committed_signature()
        assert first.settlement_signature() == second.settlement_signature()
        assert first_result.events_processed == second_result.events_processed
        router = first.router
        for user in users:
            shard, account = router.shard_of(user), router.local_account_of(user)
            assert first.shards[shard].nodes[0].balance_of(account) == second.shards[
                shard
            ].nodes[0].balance_of(account)


class TestClusterDeterminism:
    """Same seed => identical execution (the (time, sequence) ordering contract)."""

    def _run_once(self, fast_network, seed=23):
        system = ClusterSystem(
            shard_count=2,
            replicas_per_shard=4,
            batch_size=4,
            broadcast="bracha",
            network_config=fast_network,
            seed=seed,
        )
        workload = _workload(seed=2, rate=4_000.0)
        system.schedule_submissions(workload)
        result = system.run()
        return system, result

    def test_same_seed_same_committed_sequence_and_message_counts(self, fast_network):
        first_system, first = self._run_once(fast_network)
        second_system, second = self._run_once(fast_network)
        assert first_system.committed_signature() == second_system.committed_signature()
        assert first_system.settlement_signature() == second_system.settlement_signature()
        assert first_system.settlement_signature()  # settlement did run
        assert first.messages_sent == second.messages_sent
        assert first.events_processed == second.events_processed
        assert first.duration == second.duration
        assert [r.messages_sent for r in first.shard_results] == [
            r.messages_sent for r in second.shard_results
        ]

    def test_different_seed_changes_the_schedule(self, fast_network):
        first_system, _ = self._run_once(fast_network, seed=23)
        second_system, _ = self._run_once(fast_network, seed=24)
        # Same workload, different network/shard seeds: the committed set is
        # the same but completion times must differ somewhere.
        assert first_system.committed_signature() != second_system.committed_signature()
