"""Integration and determinism tests for the cluster façade."""

import pytest

from repro.cluster import ClusterSystem
from repro.common.errors import ConfigurationError
from repro.workloads.cluster_driver import ClusterWorkloadConfig, cluster_open_loop_workload


def _workload(seed=5, rate=3_000.0, duration=0.03, users=400):
    return cluster_open_loop_workload(
        ClusterWorkloadConfig(
            user_count=users,
            aggregate_rate=rate,
            duration=duration,
            zipf_skew=1.0,
            seed=seed,
        )
    )


def _system(fast_network, shards=2, batch=1, seed=11, **kwargs):
    return ClusterSystem(
        shard_count=shards,
        replicas_per_shard=4,
        batch_size=batch,
        broadcast="bracha",
        network_config=fast_network,
        seed=seed,
        **kwargs,
    )


class TestClusterSystem:
    def test_all_submissions_commit_and_definition_1_holds(self, fast_network):
        system = _system(fast_network, shards=2)
        workload = _workload()
        scheduled = system.schedule_submissions(workload)
        result = system.run()
        assert scheduled == len(workload)
        assert result.committed_count == scheduled
        assert not result.rejected
        report = system.check_definition1()
        assert report.ok, report.violations
        assert report.checked_transfers > 0
        assert len(report.shard_reports) == 2

    def test_money_is_conserved_cluster_wide(self, fast_network):
        initial = 5_000
        system = _system(fast_network, shards=3, initial_balance=initial)
        system.schedule_submissions(_workload())
        system.run()
        expected = 3 * 4 * initial  # shards x replicas x initial balance
        assert system.total_supply() == expected

    def test_every_shard_receives_traffic(self, fast_network):
        system = _system(fast_network, shards=2)
        system.schedule_submissions(_workload())
        result = system.run()
        assert all(count > 0 for count in result.per_shard_committed())
        assert result.shard_count == 2

    def test_batched_cluster_commits_everything_with_fewer_messages(self, fast_network):
        workload = _workload(rate=6_000.0)
        unbatched = _system(fast_network, shards=2, batch=1)
        unbatched.schedule_submissions(workload)
        plain = unbatched.run()
        batched = _system(fast_network, shards=2, batch=8)
        batched.schedule_submissions(workload)
        coalesced = batched.run()
        assert coalesced.committed_count == plain.committed_count == len(workload)
        assert coalesced.messages_sent < plain.messages_sent
        assert batched.check_definition1().ok

    def test_result_mirrors_system_result_api(self, fast_network):
        from repro.eval.metrics import summarize_result

        system = _system(fast_network)
        system.schedule_submissions(_workload())
        result = system.run()
        summary = summarize_result("cluster", 8, result)
        assert summary.committed == result.committed_count
        assert summary.throughput == pytest.approx(result.throughput)
        assert summary.messages_sent == result.messages_sent
        assert result.messages_per_commit > 0
        assert result.average_latency > 0
        assert 1.0 <= result.load_imbalance() < 4.0

    def test_rejects_degenerate_cluster(self, fast_network):
        with pytest.raises(ConfigurationError):
            ClusterSystem(shard_count=0)
        with pytest.raises(ConfigurationError):
            ClusterSystem(shard_count=2, replicas_per_shard=3)
        with pytest.raises(ConfigurationError):
            ClusterSystem(shard_count=2, batch_size=0)


class TestClusterDeterminism:
    """Same seed => identical execution (the (time, sequence) ordering contract)."""

    def _run_once(self, fast_network, seed=23):
        system = ClusterSystem(
            shard_count=2,
            replicas_per_shard=4,
            batch_size=4,
            broadcast="bracha",
            network_config=fast_network,
            seed=seed,
        )
        workload = _workload(seed=2, rate=4_000.0)
        system.schedule_submissions(workload)
        result = system.run()
        return system, result

    def test_same_seed_same_committed_sequence_and_message_counts(self, fast_network):
        first_system, first = self._run_once(fast_network)
        second_system, second = self._run_once(fast_network)
        assert first_system.committed_signature() == second_system.committed_signature()
        assert first.messages_sent == second.messages_sent
        assert first.events_processed == second.events_processed
        assert first.duration == second.duration
        assert [r.messages_sent for r in first.shard_results] == [
            r.messages_sent for r in second.shard_results
        ]

    def test_different_seed_changes_the_schedule(self, fast_network):
        first_system, _ = self._run_once(fast_network, seed=23)
        second_system, _ = self._run_once(fast_network, seed=24)
        # Same workload, different network/shard seeds: the committed set is
        # the same but completion times must differ somewhere.
        assert first_system.committed_signature() != second_system.committed_signature()
