"""Incremental checkpoints: the O(delta) migration seam, pinned.

Three layers of contract.  At the bottom, the structural delta codec:
``fold_value(old, diff_value(old, new))`` must reproduce ``new``
byte-identically under the pipe codec, append-only lists must ship only
their suffix, and corrupt chains must be refused rather than folded.  In
the middle, the checkpoint itself: a ``ShardCheckpoint`` taken at an
arbitrary quiescent barrier, restored onto a never-run twin, reproduces
the full snapshot exactly, and the delta stream a backend emits folds —
independently, by this test — to the very checkpoints the backend holds,
on Serial, Thread and Process alike.  At the top, the invariance the whole
seam exists to preserve: every checkpoint cadence, with or without local
history compaction, with or without live migration, produces the same run
fingerprint as the no-checkpoint reference — while the adopt payloads
actually shrink (delta bytes below full snapshot bytes, replayed events
below genesis replay) and the driver-side replay log stays truncated
behind the newest checkpoint (the unbounded-growth bugfix).

The workload is deliberately *bursty*: two submission bursts separated by
an idle gap, because opportunistic checkpoints only fire at
protocol-quiescent barriers — mid-burst barriers are skipped, gap barriers
are taken, and a shard migrating during burst two therefore replays a
genuinely non-empty tail on top of a genuinely mid-run checkpoint.
"""

import pytest

from repro.cluster import ClusterSystem, codec
from repro.cluster.checkpoint import (
    CheckpointDelta,
    checkpoint_delta,
    diff_value,
    fold_checkpoint,
    fold_value,
    replayable_suffix,
)
from repro.cluster.migration import MigrationPlan
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.types import Transfer
from repro.workloads.cluster_driver import ClusterSubmission

BACKENDS = ("serial", "thread", "process")

# Burst geometry: 40 arrivals from t=0.0, an idle gap, 40 more from t=0.1.
# With the default 0.005 epoch, barriers inside the gap (~0.04-0.1) are
# protocol-quiescent — checkpoints fire there — while mid-burst barriers
# carry in-flight settlement and are skipped.
_BURST_BASES = (0.0, 0.1)
_PER_BURST = 40
_USERS = 24


def _bursty_submissions():
    submissions = []
    for burst, base in enumerate(_BURST_BASES):
        for i in range(_PER_BURST):
            source = (i * 3 + burst) % _USERS
            destination = (source + 1 + i % 5) % _USERS
            if destination == source:
                destination = (destination + 1) % _USERS
            submissions.append(
                ClusterSubmission(
                    time=base + 0.0001 + 0.0004 * i,
                    source_user=source,
                    destination_user=destination,
                    amount=1 + i % 7,
                )
            )
    return submissions


def _system(fast_network, backend="serial", seed=3, **kwargs):
    return ClusterSystem(
        shard_count=3,
        replicas_per_shard=4,
        batch_size=2,
        initial_balance=500,
        network_config=fast_network,
        backend=backend,
        max_workers=2,
        seed=seed,
        **kwargs,
    )


def _run(fast_network, backend="serial", **kwargs):
    system = _system(fast_network, backend, **kwargs)
    system.schedule_submissions(_bursty_submissions())
    result = system.run()
    return system, result


# The no-checkpoint serial reference every sweep compares against.  The
# workload and network are fully deterministic, so one run serves the
# whole module.
_REFERENCE = {}


def _reference_fingerprint(fast_network):
    if "fingerprint" not in _REFERENCE:
        system, result = _run(fast_network, "serial")
        try:
            _REFERENCE["fingerprint"] = result.fingerprint()
        finally:
            system.close()
    return _REFERENCE["fingerprint"]


class TestDeltaCodec:
    """The structural diff/fold pair under the wire codec."""

    def test_equal_values_produce_no_delta(self):
        for value, twin in (
            (None, None),
            (7, 7),
            ("account", "account"),
            ([1, 2], [1, 2]),
            ({"a": 1}, {"a": 1}),
            ({1, 2}, {1, 2}),
            (
                Transfer("0", "1", 5, issuer=0, sequence=1),
                Transfer("0", "1", 5, issuer=0, sequence=1),
            ),
        ):
            assert diff_value(value, twin) is None

    def test_dict_delta_folds_added_removed_and_changed(self):
        old = {"keep": 1, "change": [1], "drop": 9}
        new = {"keep": 1, "change": [1, 2], "added": 4}
        delta = diff_value(old, new)
        assert delta[0] == "dict"
        assert fold_value(old, delta) == new

    def test_append_only_lists_ship_only_the_suffix(self):
        delta = diff_value([1, 2], [1, 2, 3, 4])
        assert delta == ("append", [3, 4])
        assert fold_value([1, 2], delta) == [1, 2, 3, 4]
        # A rewritten prefix cannot be expressed as an append.
        assert diff_value([1, 2], [9, 2, 3])[0] == "replace"

    def test_set_delta_folds(self):
        old = {1, 2, 3}
        new = {2, 3, 4}
        delta = diff_value(old, new)
        assert delta[0] == "set"
        assert fold_value(old, delta) == new

    def test_dataclass_delta_touches_only_changed_fields(self):
        old = Transfer("0", "1", 5, issuer=0, sequence=1)
        new = Transfer("0", "1", 8, issuer=0, sequence=1)
        delta = diff_value(old, new)
        assert delta[0] == "fields"
        assert set(delta[1]) == {"amount"}
        assert fold_value(old, delta) == new

    def test_fold_is_byte_identical_under_the_codec(self):
        """The codec encodes containers in insertion order; fold preserves
        it, so a folded value is indistinguishable on the wire."""
        old = {
            "log": [("a", 1), ("b", 2)],
            "balances": {"0": 10, "1": 20},
            "seen": {1, 2},
        }
        new = {
            "log": [("a", 1), ("b", 2), ("c", 3)],
            "balances": {"0": 10, "1": 15},
            "seen": {1, 2, 3},
            "watermark": 7,
        }
        folded = fold_value(old, diff_value(old, new))
        assert codec.encode(folded) == codec.encode(new)

    def test_unknown_delta_tag_is_refused(self):
        with pytest.raises(SimulationError):
            fold_value(1, ("bogus", 2))

    def test_replayable_suffix_is_strictly_after(self):
        entries = [("mint", 0.01, []), ("mint", 0.02, []), ("retire", 0.03, [])]
        assert replayable_suffix(entries, 0.02) == [("retire", 0.03, [])]
        assert replayable_suffix(entries, 0.0) == entries
        assert replayable_suffix(entries, 0.03) == []


class TestCheckpointDeltaChain:
    """Real ShardCheckpoints: full/incremental encoding and chain safety."""

    def _two_checkpoints(self, fast_network):
        """One shard's checkpoint mid-gap and again at the drained end."""
        system = _system(fast_network, "serial")
        system.schedule_submissions(_bursty_submissions())
        system.run(until=0.08)  # inside the idle gap: quiescent
        shard = system._backend._shards[0]
        first = shard.checkpoint()
        assert first is not None, shard.checkpoint_blockers()
        system.run()  # burst two lands: state and sequence move on
        second = shard.checkpoint()
        assert second is not None, shard.checkpoint_blockers()
        assert second.sequence > first.sequence
        system.close()
        return first, second

    def test_full_delta_carries_the_sentinel_base(self, fast_network):
        first, _ = self._two_checkpoints(fast_network)
        delta = checkpoint_delta(None, first)
        assert delta.base_sequence == -1
        folded = fold_checkpoint(None, delta)
        assert codec.encode(folded) == codec.encode(first)

    def test_incremental_delta_folds_back_to_the_checkpoint(self, fast_network):
        first, second = self._two_checkpoints(fast_network)
        delta = checkpoint_delta(first, second)
        assert delta.base_sequence == first.sequence
        folded = fold_checkpoint(first, delta)
        assert folded == second
        # Folding is deterministic: two independent folds of the same delta
        # are byte-identical on the wire (the process driver relies on this
        # — its baselines *are* folds, compared across checkpoint rounds).
        assert codec.encode(folded) == codec.encode(fold_checkpoint(first, delta))
        # The increment is the transport win: smaller than the checkpoint.
        assert codec.encoded_size(delta) < codec.encoded_size(second)
        # And it survives the pipe intact.
        assert codec.decode(codec.encode(delta)) == delta

    def test_folding_onto_the_wrong_base_is_refused(self, fast_network):
        first, second = self._two_checkpoints(fast_network)
        delta = checkpoint_delta(first, second)
        with pytest.raises(SimulationError):
            fold_checkpoint(None, delta)  # incremental delta, no baseline
        with pytest.raises(SimulationError):
            fold_checkpoint(second, delta)  # baseline from the wrong round

    def test_cross_shard_delta_is_refused(self, fast_network):
        system = _system(fast_network, "serial")
        system.schedule_submissions(_bursty_submissions())
        system.run()
        shards = system._backend._shards
        a, b = shards[0].checkpoint(), shards[1].checkpoint()
        assert a is not None and b is not None
        with pytest.raises(SimulationError):
            checkpoint_delta(a, b)
        system.close()


class TestShardCheckpointRoundTrip:
    """A checkpoint restored onto a never-run twin is the original shard."""

    def test_restore_reproduces_the_full_snapshot_byte_for_byte(
        self, fast_network
    ):
        system = _system(fast_network, "serial")
        system.schedule_submissions(_bursty_submissions())
        system.run(until=0.08)  # a genuinely mid-run barrier, not the end
        try:
            for shard in system._backend._shards:
                taken = shard.checkpoint()
                assert taken is not None, shard.checkpoint_blockers()
                twin = shard.spec().build()
                twin.install_validation_collector()
                twin.start()
                scheduled = twin.restore_checkpoint(taken, [])
                assert scheduled == 0  # no arrivals strictly after the gap barrier... yet
                assert codec.encode(twin.snapshot(include_metrics=False)) == codec.encode(
                    taken.state
                )
                for pid in shard.nodes:
                    assert (
                        twin.nodes[pid].all_known_balances()
                        == shard.nodes[pid].all_known_balances()
                    )
                # Everything the pipe ships round-trips through the codec.
                assert codec.decode(codec.encode(taken)) == taken
        finally:
            system.close()

    def test_restore_refuses_a_foreign_shard_checkpoint(self, fast_network):
        system = _system(fast_network, "serial")
        system.schedule_submissions(_bursty_submissions())
        system.run()
        try:
            taken = system._backend._shards[0].checkpoint()
            assert taken is not None
            twin = system._backend._shards[1].spec().build()
            twin.install_validation_collector()
            twin.start()
            with pytest.raises(ConfigurationError):
                twin.restore_checkpoint(taken, [])
        finally:
            system.close()

    def test_mid_protocol_barriers_decline_the_checkpoint(self, fast_network):
        """Quiescence gating is self-consistent: ``checkpoint()`` returns
        ``None`` exactly when ``checkpoint_blockers()`` names a reason —
        and the mid-burst pauses really do catch shards mid-protocol."""
        system = _system(fast_network, "serial")
        system.schedule_submissions(_bursty_submissions())
        saw_blocked = False
        try:
            for pause in (0.005, 0.01, 0.015):
                system.run(until=pause)
                for shard in system._backend._shards:
                    blockers = shard.checkpoint_blockers()
                    taken = shard.checkpoint()
                    assert (taken is None) == bool(blockers)
                    saw_blocked = saw_blocked or bool(blockers)
            assert saw_blocked  # the gate must not pass vacuously
            system.run()
        finally:
            system.close()


class TestCheckpointStreamFolding:
    """The backend's delta stream, folded independently, is its baseline."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delta_stream_folds_to_the_backend_baseline(
        self, fast_network, backend
    ):
        system = _system(fast_network, backend)
        system.schedule_submissions(_bursty_submissions())
        folded = {}
        refolded = {}
        saw_incremental = False
        try:
            for pause in (0.05, 0.08, 0.13):
                system.run(until=pause)
                deltas = system._backend.checkpoint(system.scheduler.now)
                for index in sorted(deltas):
                    delta = deltas[index]
                    # Pipe round-trip, then two independent folds.
                    assert codec.decode(codec.encode(delta)) == delta
                    saw_incremental = saw_incremental or delta.base_sequence != -1
                    folded[index] = fold_checkpoint(folded.get(index), delta)
                    refolded[index] = fold_checkpoint(refolded.get(index), delta)
            baselines = system._backend.checkpoints()
            assert folded, "no checkpoint fired at any gap barrier"
            assert saw_incremental, "the stream never went incremental"
            assert set(folded) == set(baselines)
            for index, checkpoint in folded.items():
                # The independent fold reconstructs the backend's baseline
                # exactly (equality is the contract: the serial baselines are
                # live deep copies whose dict insertion order may differ) and
                # folding itself is deterministic to the byte.
                assert checkpoint == baselines[index]
                assert codec.encode(checkpoint) == codec.encode(refolded[index])
            stats = system._backend.checkpoint_stats()
            assert stats["taken"] >= len(folded)
            assert 0 < stats["delta_bytes"] < stats["full_bytes"]
            # Checkpoints are observation-only: the drained run still equals
            # the untouched reference.
            result = system.run()
            assert result.fingerprint() == _reference_fingerprint(fast_network)
            assert system.check_definition1().ok
        finally:
            system.close()


class TestFingerprintInvariance:
    """The headline contract: cadence and compaction never change results."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("cadence", (1, 3))
    def test_every_cadence_matches_the_reference(
        self, fast_network, backend, cadence
    ):
        system, result = _run(fast_network, backend, checkpoint_every=cadence)
        try:
            assert result.fingerprint() == _reference_fingerprint(fast_network)
            assert system.check_definition1().ok
            assert result.audit["conserved"]
            stats = system.checkpoint_stats()
            assert stats["taken"] > 0  # the sweep must not pass vacuously
        finally:
            system.close()

    def test_cadence_property_sweep(self, fast_network):
        """Any cadence whatsoever — the property, swept densely on serial."""
        reference = _reference_fingerprint(fast_network)
        for cadence in range(1, 7):
            system, result = _run(
                fast_network, "serial", checkpoint_every=cadence
            )
            try:
                assert result.fingerprint() == reference, cadence
                assert system.checkpoint_stats()["taken"] > 0, cadence
            finally:
                system.close()

    @pytest.mark.parametrize("backend", ("serial", "process"))
    def test_history_compaction_preserves_the_fingerprint(
        self, fast_network, backend
    ):
        baseline_system, baseline = _run(fast_network, "serial")
        compacted_system, compacted = _run(
            fast_network, backend, compact_history=True, checkpoint_every=2
        )
        try:
            assert compacted.fingerprint() == baseline.fingerprint()
            assert compacted_system.check_definition1().ok
            # The knob must actually bite: consumed ordinary records left
            # the ledgers, and fewer remain resident than without it.
            assert compacted_system.compacted_local_records() > 0
            assert (
                compacted_system.resident_local_records()
                < baseline_system.resident_local_records()
            )
        finally:
            baseline_system.close()
            compacted_system.close()


class TestCheckpointedMigration:
    """Moves after a checkpoint ship the delta, and the log stays bounded."""

    # The first move lands inside the idle gap (checkpoints already taken),
    # the second mid-burst-two (replaying a real arrivals + command tail).
    _PLAN = ((0.05, 0, 1), (0.112, 0, 0))

    def _migrated(self, fast_network, checkpoint_every):
        return _run(
            fast_network,
            "process",
            migration=MigrationPlan(list(self._PLAN)),
            checkpoint_every=checkpoint_every,
        )

    def test_checkpointed_moves_ship_o_delta_payloads(self, fast_network):
        full_system, full = self._migrated(fast_network, None)
        delta_system, incremental = self._migrated(fast_network, 1)
        try:
            # Same moves, same results — the O(delta) path is invisible to
            # the protocol.
            reference = _reference_fingerprint(fast_network)
            assert full.fingerprint() == reference
            assert incremental.fingerprint() == reference
            full_records = full_system.scheduler.migration_log
            delta_records = delta_system.scheduler.migration_log
            assert [r.signature() for r in full_records] == [
                r.signature() for r in delta_records
            ]
            assert len(delta_records) == len(self._PLAN)
            for genesis, checkpointed in zip(full_records, delta_records):
                # Checkpoints only ever shrink the replay payload...
                assert checkpointed.delta_bytes <= genesis.delta_bytes
                assert checkpointed.replayed_events <= genesis.replayed_events
                # ...and never change the full-snapshot measurement.
                assert checkpointed.snapshot_bytes == genesis.snapshot_bytes
                # The adopt payload is the incremental win the benchmark
                # journals: strictly below the full snapshot it replaces.
                assert 0 < checkpointed.delta_bytes < checkpointed.snapshot_bytes
            # Strict in aggregate: the checkpointed run replayed less.
            assert sum(r.replayed_events for r in delta_records) < sum(
                r.replayed_events for r in full_records
            )
            assert sum(r.delta_bytes for r in delta_records) < sum(
                r.delta_bytes for r in full_records
            )
        finally:
            full_system.close()
            delta_system.close()

    def test_checkpoints_truncate_the_driver_replay_log(self, fast_network):
        """The unbounded-growth bugfix: with migration enabled the driver
        records every barrier command forever; checkpoints must cut each
        shard's log behind the newest baseline."""
        unbounded_system, _ = self._migrated(fast_network, None)
        bounded_system, _ = self._migrated(fast_network, 1)
        try:
            unbounded = sum(
                len(entries)
                for entries in unbounded_system._backend._history.values()
            )
            bounded = sum(
                len(entries)
                for entries in bounded_system._backend._history.values()
            )
            assert unbounded > 0
            assert bounded < unbounded
            # Nothing strictly older than a shard's baseline checkpoint
            # survives.  Entries *at* the baseline barrier are legitimate:
            # the settlement exchange runs after the checkpoint phase and
            # appends its commands at that same barrier time.
            baselines = bounded_system._backend.checkpoints()
            for index, entries in bounded_system._backend._history.items():
                if index in baselines:
                    assert all(
                        entry[1] >= baselines[index].time for entry in entries
                    )
        finally:
            unbounded_system.close()
            bounded_system.close()


class TestPendingRetirementSweep:
    """The `_pending_retirements` leak: parked entries whose issuer stream
    moved past them can never validate and must be swept."""

    def _system_with_local_pair(self, fast_network):
        system = ClusterSystem(
            shard_count=2,
            replicas_per_shard=4,
            network_config=fast_network,
            seed=3,
        )
        users = iter(range(100_000))
        a = next(u for u in users if system.router.shard_of(u) == 0)
        b = next(u for u in users if system.router.shard_of(u) == 0)
        # The router remaps user ids onto shard-local issuer ids and account
        # names; the ledger-level assertions below need the mapped identities.
        route = system.router.route(a, b)
        return system, a, b, route

    def test_stale_parked_retirement_is_swept_when_the_stream_passes(
        self, fast_network
    ):
        system, a, b, route = self._system_with_local_pair(fast_network)
        system.start()
        node = system.shards[0].nodes[0]
        # A retirement for a transfer this replica will never validate: the
        # issuer's slot 1 goes to a *different* (real) transfer below.
        ghost = Transfer(str(route.issuer), "x1:2", 5, issuer=route.issuer, sequence=1)
        node.retire_settled([ghost])
        assert ghost in node._pending_retirements
        assert node.stale_retirements_dropped == 0
        system.schedule_submissions(
            [
                ClusterSubmission(
                    time=0.001, source_user=a, destination_user=b, amount=9
                )
            ]
        )
        system.run()
        # The stream really moved past slot 1...
        assert node.seq.get(route.issuer, 0) >= 1
        node.retire_settled([])
        assert ghost not in node._pending_retirements
        assert node.stale_retirements_dropped == 1
        # ...and the real record is untouched: only the unreachable parking
        # was cut.
        assert node.balance_of(route.destination_account) == 1_000_000 + 9

    def test_future_parked_retirements_survive_the_sweep(self, fast_network):
        system, a, b, route = self._system_with_local_pair(fast_network)
        system.schedule_submissions(
            [
                ClusterSubmission(
                    time=0.001, source_user=a, destination_user=b, amount=9
                )
            ]
        )
        system.run()
        node = system.shards[0].nodes[0]
        # Slot 5 is still ahead of the stream: the certificate merely
        # outran validation, so the parking must persist.
        early = Transfer(str(route.issuer), "x1:2", 5, issuer=route.issuer, sequence=5)
        node.retire_settled([early])
        assert early in node._pending_retirements
        assert node.stale_retirements_dropped == 0

    def test_parking_behind_the_watermark_is_swept_immediately(
        self, fast_network
    ):
        system, a, b, route = self._system_with_local_pair(fast_network)
        system.schedule_submissions(
            [
                ClusterSubmission(
                    time=0.001, source_user=a, destination_user=b, amount=9
                )
            ]
        )
        system.run()
        node = system.shards[0].nodes[0]
        ghost = Transfer(str(route.issuer), "x1:2", 5, issuer=route.issuer, sequence=1)
        node.retire_settled([ghost])  # parks, then the same call sweeps
        assert ghost not in node._pending_retirements
        assert node.stale_retirements_dropped == 1


class TestConfigurationValidation:
    def test_checkpoints_need_an_epoch_backend(self, fast_network):
        with pytest.raises(ConfigurationError):
            ClusterSystem(
                shard_count=2,
                network_config=fast_network,
                checkpoint_every=2,
                seed=3,
            )

    def test_checkpoint_cadence_must_be_positive(self, fast_network):
        with pytest.raises(ConfigurationError):
            ClusterSystem(
                shard_count=2,
                network_config=fast_network,
                backend="serial",
                checkpoint_every=0,
                seed=3,
            )
