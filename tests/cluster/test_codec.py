"""Unit tests for the compact worker-pipe codec.

The codec replaces pickle on the process-pool pipes, so the properties that
matter are exactness (round-tripped values compare equal *and* keep their
container iteration order — the fingerprint reads reprs downstream) and
compactness (the snapshot byte counts gate migration stall accounting).
"""

import pickle

import pytest

from repro.cluster.codec import decode, encode, encoded_size
from repro.cluster.settlement import (
    SettlementAckClaim,
    SettlementCertificate,
    SettlementClaim,
)
from repro.cluster.shard import AdvanceReport, ShardSpec, ValidationEvent
from repro.common.types import Transfer, TransferId
from repro.crypto.signatures import SignatureScheme
from repro.network.node import NetworkConfig, NodeStats
from repro.workloads.cluster_driver import RoutedSubmission


def roundtrip(value):
    data = encode(value)
    result = decode(data)
    assert result == value
    assert type(result) is type(value)
    return result


class TestScalars:
    def test_none_and_bools(self):
        for value in (None, True, False):
            assert decode(encode(value)) is value

    def test_ints_including_negatives_and_wide(self):
        for value in (0, 1, -1, 127, 128, -128, 2**40, -(2**40), 2**70, -(2**70)):
            roundtrip(value)

    def test_floats_are_exact(self):
        for value in (0.0, -0.0, 1.5, 1e-12, 3.141592653589793, float("inf")):
            assert decode(encode(value)) == value
        assert str(decode(encode(-0.0))) == "-0.0"

    def test_strings_and_bytes(self):
        roundtrip("")
        roundtrip("x1:17")
        roundtrip("ünïcode ✓")
        roundtrip(b"")
        roundtrip(b"\x00\xff" * 7)

    def test_bool_never_collapses_to_int(self):
        assert decode(encode(True)) is True
        assert decode(encode(1)) == 1
        assert type(decode(encode(1))) is int


class TestContainers:
    def test_lists_tuples_nested(self):
        roundtrip([1, "two", 3.0, None, [True, (4, 5)]])
        roundtrip(((), (1,), ("a", ("b",))))

    def test_dict_preserves_insertion_order(self):
        value = {"z": 1, "a": 2, "m": 3}
        result = roundtrip(value)
        assert list(result) == ["z", "a", "m"]

    def test_sets_rebuild_by_insertion_like_pickle(self):
        value = {TransferId(issuer=3, sequence=9), TransferId(issuer=1, sequence=2)}
        result = roundtrip(value)
        # Iteration order must match what pickle's reconstruction would
        # produce: items inserted in the original iteration order.
        assert list(result) == list(pickle.loads(pickle.dumps(value)))
        roundtrip(frozenset({1, 2, 3}))

    def test_tuple_keys_in_dicts(self):
        roundtrip({(0, "a"): [1, 2], (1, "b"): []})


class TestRegisteredTypes:
    def test_transfer_family(self):
        roundtrip(Transfer("a", "b", 5, issuer=0, sequence=1))
        roundtrip(TransferId(issuer=2, sequence=7))
        roundtrip(RoutedSubmission(time=0.25, issuer=2, destination="x1:0", amount=9))

    def test_shard_spec_with_network_config(self):
        spec = ShardSpec(
            index=3, replicas=4, initial_balance=10_000, broadcast="bracha",
            batch_size=8, network_config=NetworkConfig(seed=7), relay_final=True,
            seed=42, telemetry=False,
        )
        roundtrip(spec)

    def test_settlement_certificates_and_signatures(self):
        scheme = SignatureScheme(seed=5)
        claim = SettlementClaim(
            source_shard=0, destination_shard=1, issuer=2,
            sequence=4, account="x1:2", amount=11,
        )
        certificate = SettlementCertificate(
            claim=claim,
            certificate=scheme.make_certificate(
                claim, [scheme.keypair_for(p).sign(claim) for p in range(3)]
            ),
        )
        restored = roundtrip(certificate)
        assert scheme.verify_certificate(claim, restored.certificate, quorum_size=3)
        roundtrip(SettlementAckClaim(0, 1, 2, 4))

    def test_advance_report_with_events(self):
        report = AdvanceReport(
            shard=1,
            events=[
                ValidationEvent(
                    time=0.01, shard=1, replica=0,
                    transfer=Transfer("0", "x1:3", 5, issuer=0, sequence=1), index=0,
                )
            ],
            pending_events=3,
            next_event_time=0.0125,
            processed_events=140,
            now=0.01,
        )
        roundtrip(report)

    def test_node_stats(self):
        roundtrip(NodeStats(sent=4, received=9, processed=9, dropped=0, busy_time=0.25))

    def test_broadcast_envelopes(self):
        # The slotted per-hop envelopes are registered types: one tag byte
        # plus field values, no class paths or field names on the wire.
        from repro.broadcast.messages import (
            AccountTaggedPayload,
            EchoMessage,
            EchoSignatureMessage,
            FinalMessage,
            ReadyMessage,
            SendMessage,
        )
        from repro.broadcast.secure_broadcast import BroadcastDelivery

        scheme = SignatureScheme(seed=5)
        payload = ("batch", 1, 2)
        for envelope in (
            SendMessage(channel="xfer", origin=0, sequence=1, payload=payload),
            EchoMessage(channel="xfer", origin=0, sequence=1, payload=payload),
            ReadyMessage(channel="xfer", origin=0, sequence=1, payload=payload),
            EchoSignatureMessage(
                channel="xfer", origin=0, sequence=1, payload=payload,
                signature=scheme.keypair_for(2).sign(payload),
            ),
            AccountTaggedPayload(account="x1:2", account_sequence=4, body=payload),
            BroadcastDelivery(origin=0, sequence=1, payload=payload),
        ):
            assert len(encode(envelope)) < len(pickle.dumps(envelope))
            roundtrip(envelope)
        final = FinalMessage(
            channel="xfer", origin=0, sequence=1, payload=payload,
            certificate=scheme.make_certificate(
                payload, [scheme.keypair_for(p).sign(payload) for p in range(3)]
            ),
        )
        restored = roundtrip(final)
        assert scheme.verify_certificate(payload, restored.certificate, quorum_size=3)

    def test_batch_announcement_keeps_its_memoised_count(self):
        from repro.cluster.batching import BatchAnnouncement
        from repro.mp.messages import TransferAnnouncement

        batch = BatchAnnouncement(
            tuple(
                TransferAnnouncement(Transfer("0", "1", 1, issuer=0, sequence=s))
                for s in (1, 2, 3)
            )
        )
        restored = roundtrip(batch)
        assert restored.item_count == 3


class TestWireDiscipline:
    def test_pickle_escape_for_unregistered_values(self):
        roundtrip(complex(2, 3))

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ValueError):
            decode(encode(1) + b"\x00")

    def test_worker_command_frames(self):
        for command in (
            ("advance", 0.005, None),
            ("mint", 0.005, [(0, [(1, Transfer("x0:1", "1", 3, issuer=1, sequence=2))])]),
            ("evict", [0, 2]),
            ("snapshot",),
            ("stop",),
        ):
            roundtrip(command)

    def test_snapshot_like_payload_beats_pickle_on_size(self):
        transfers = [
            Transfer(str(i % 4), f"x1:{i % 3}", 1 + i, issuer=i % 4, sequence=i)
            for i in range(200)
        ]
        payload = {
            "completed": transfers,
            "hist": {str(a): {TransferId(issuer=a, sequence=s) for s in range(10)} for a in range(4)},
        }
        assert roundtrip(payload) == payload
        assert encoded_size(payload) < len(pickle.dumps(payload))
