"""Unit tests for the discrete-event engine."""

import pytest

from repro.common.errors import SimulationError
from repro.network.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(0.5, lambda: order.append("late"))
        simulator.schedule(0.1, lambda: order.append("early"))
        simulator.run_until_quiescent()
        assert order == ["early", "late"]
        assert simulator.now == pytest.approx(0.5)

    def test_ties_broken_by_scheduling_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(0.1, lambda: order.append(1))
        simulator.schedule(0.1, lambda: order.append(2))
        simulator.run_until_quiescent()
        assert order == [1, 2]

    def test_events_can_schedule_events(self):
        simulator = Simulator()
        seen = []

        def first():
            seen.append(simulator.now)
            simulator.schedule(0.2, lambda: seen.append(simulator.now))

        simulator.schedule(0.1, first)
        simulator.run_until_quiescent()
        assert seen == [pytest.approx(0.1), pytest.approx(0.3)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run_until_quiescent()
        with pytest.raises(SimulationError):
            simulator.schedule_at(0.5, lambda: None)

    def test_cancelled_events_are_skipped(self):
        simulator = Simulator()
        fired = []
        event = simulator.schedule(0.1, lambda: fired.append(True))
        event.cancel()
        simulator.run_until_quiescent()
        assert fired == []
        assert simulator.pending_events == 0

    def test_run_until_horizon(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(0.1, lambda: fired.append("a"))
        simulator.schedule(5.0, lambda: fired.append("b"))
        simulator.run(until=1.0)
        assert fired == ["a"]
        assert simulator.pending_events == 1

    def test_event_budget_guard(self):
        simulator = Simulator()

        def renew():
            simulator.schedule(0.001, renew)

        simulator.schedule(0.001, renew)
        with pytest.raises(SimulationError):
            simulator.run(max_events=50)

    def test_stop_when_predicate(self):
        simulator = Simulator()
        counter = []
        for index in range(10):
            simulator.schedule(0.01 * (index + 1), lambda: counter.append(1))
        simulator.run(stop_when=lambda: len(counter) >= 3)
        assert len(counter) == 3
