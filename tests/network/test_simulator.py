"""Unit tests for the discrete-event engine."""

import pytest

from repro.common.errors import SimulationError
from repro.network.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(0.5, lambda: order.append("late"))
        simulator.schedule(0.1, lambda: order.append("early"))
        simulator.run_until_quiescent()
        assert order == ["early", "late"]
        assert simulator.now == pytest.approx(0.5)

    def test_ties_broken_by_scheduling_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(0.1, lambda: order.append(1))
        simulator.schedule(0.1, lambda: order.append(2))
        simulator.run_until_quiescent()
        assert order == [1, 2]

    def test_events_can_schedule_events(self):
        simulator = Simulator()
        seen = []

        def first():
            seen.append(simulator.now)
            simulator.schedule(0.2, lambda: seen.append(simulator.now))

        simulator.schedule(0.1, first)
        simulator.run_until_quiescent()
        assert seen == [pytest.approx(0.1), pytest.approx(0.3)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run_until_quiescent()
        with pytest.raises(SimulationError):
            simulator.schedule_at(0.5, lambda: None)

    def test_cancelled_events_are_skipped(self):
        simulator = Simulator()
        fired = []
        event = simulator.schedule(0.1, lambda: fired.append(True))
        event.cancel()
        simulator.run_until_quiescent()
        assert fired == []
        assert simulator.pending_events == 0

    def test_run_until_horizon(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(0.1, lambda: fired.append("a"))
        simulator.schedule(5.0, lambda: fired.append("b"))
        simulator.run(until=1.0)
        assert fired == ["a"]
        assert simulator.pending_events == 1

    def test_event_budget_guard(self):
        simulator = Simulator()

        def renew():
            simulator.schedule(0.001, renew)

        simulator.schedule(0.001, renew)
        with pytest.raises(SimulationError):
            simulator.run(max_events=50)

    def test_stop_when_predicate(self):
        simulator = Simulator()
        counter = []
        for index in range(10):
            simulator.schedule(0.01 * (index + 1), lambda: counter.append(1))
        simulator.run(stop_when=lambda: len(counter) >= 3)
        assert len(counter) == 3


class TestEventBudgetBoundary:
    """The budget guards livelock, not runs that finish on the last event."""

    def test_draining_on_exactly_the_last_allowed_event_is_clean(self):
        simulator = Simulator()
        fired = []
        for index in range(5):
            simulator.schedule(0.01 * (index + 1), lambda: fired.append(1))
        assert simulator.run(max_events=5) == pytest.approx(0.05)
        assert len(fired) == 5
        assert simulator.pending_events == 0

    def test_budget_still_raises_when_live_events_remain(self):
        simulator = Simulator()
        for index in range(6):
            simulator.schedule(0.01 * (index + 1), lambda: None)
        with pytest.raises(SimulationError):
            simulator.run(max_events=5)

    def test_trailing_cancelled_events_do_not_trip_the_budget(self):
        simulator = Simulator()
        for index in range(5):
            simulator.schedule(0.01 * (index + 1), lambda: None)
        simulator.schedule(1.0, lambda: None).cancel()
        assert simulator.run(max_events=5) == pytest.approx(0.05)

    def test_processed_events_still_accumulates_across_runs(self):
        simulator = Simulator()
        simulator.schedule(0.01, lambda: None)
        simulator.run(max_events=1)
        simulator.schedule(0.01, lambda: None)
        simulator.run(max_events=1)
        assert simulator.processed_events == 2


class TestPendingEventsAccounting:
    """pending_events is a live counter, exact under cancellation."""

    def test_schedule_cancel_pop_keep_the_counter_exact(self):
        simulator = Simulator()
        events = [simulator.schedule(0.01 * (i + 1), lambda: None) for i in range(4)]
        assert simulator.pending_events == 4
        events[1].cancel()
        events[3].cancel()
        assert simulator.pending_events == 2
        events[1].cancel()  # double-cancel must not double-count
        assert simulator.pending_events == 2
        simulator.run_until_quiescent()
        assert simulator.pending_events == 0
        assert simulator.processed_events == 2

    def test_cancel_after_execution_is_a_no_op(self):
        simulator = Simulator()
        event = simulator.schedule(0.01, lambda: None)
        simulator.run_until_quiescent()
        assert simulator.pending_events == 0
        event.cancel()
        assert simulator.pending_events == 0

    def test_next_event_time_skips_cancelled_heads(self):
        simulator = Simulator()
        head = simulator.schedule(0.01, lambda: None)
        simulator.schedule(0.02, lambda: None)
        head.cancel()
        assert simulator.next_event_time == pytest.approx(0.02)
        assert simulator.pending_events == 1

    def test_interleaved_scheduling_at_shared_timestamps_stays_fifo(self):
        # Late arrivals into the slot being drained must honour the
        # (time, sequence) order the heap-based engine defined.
        simulator = Simulator()
        order = []

        def first():
            order.append("first")
            simulator.schedule_at(simulator.now, lambda: order.append("late"))

        simulator.schedule(0.0001, first)
        simulator.schedule_at(0.0001, lambda: order.append("second"))
        simulator.run_until_quiescent()
        assert order == ["first", "second", "late"]
