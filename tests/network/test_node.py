"""Unit tests for the network layer: delivery, latency, CPU queueing."""

import pytest

from repro.common.errors import ConfigurationError
from repro.network.node import Network, NetworkConfig, Node
from repro.network.simulator import Simulator


class Recorder(Node):
    """A node that records everything it receives."""

    def __init__(self, node_id, cost=None):
        super().__init__(node_id)
        self.received = []
        self._cost = cost

    def processing_cost(self, message):
        return self._cost

    def on_message(self, sender, message):
        self.received.append((sender, message, self.now))


class Greeter(Recorder):
    """Broadcasts one greeting when the simulation starts."""

    def on_start(self):
        self.broadcast({"hello": self.node_id}, include_self=False)


def build(node_cls=Recorder, count=3, config=None, **kwargs):
    simulator = Simulator()
    network = Network(simulator, config or NetworkConfig(seed=5))
    nodes = [node_cls(i, **kwargs) for i in range(count)]
    network.add_nodes(nodes)
    return simulator, network, nodes


class TestDelivery:
    def test_broadcast_reaches_everyone_else(self):
        _, network, nodes = build(Greeter)
        network.run()
        for node in nodes:
            senders = {sender for sender, _msg, _t in node.received}
            assert senders == set(range(3)) - {node.node_id}

    def test_latency_is_at_least_the_base(self):
        config = NetworkConfig(latency_base=0.01, latency_mean=0.0, seed=1)
        _, network, nodes = build(Greeter, config=config)
        network.run()
        for node in nodes:
            for _sender, _msg, at in node.received:
                assert at >= 0.01

    def test_message_counters(self):
        _, network, _ = build(Greeter)
        network.run()
        assert network.messages_sent == 6
        assert network.messages_delivered == 6

    def test_unknown_recipient_rejected(self):
        simulator = Simulator()
        network = Network(simulator, NetworkConfig())
        node = Recorder(0)
        network.add_node(node)
        network.start()
        with pytest.raises(Exception):
            node.send(99, "hi")

    def test_duplicate_node_id_rejected(self):
        simulator = Simulator()
        network = Network(simulator, NetworkConfig())
        network.add_node(Recorder(0))
        with pytest.raises(ConfigurationError):
            network.add_node(Recorder(0))

    def test_drop_probability(self):
        config = NetworkConfig(seed=3, drop_probability=0.5)
        simulator = Simulator()
        network = Network(simulator, config)
        sender, receiver = Recorder(0), Recorder(1)
        network.add_nodes([sender, receiver])
        network.start()
        for _ in range(200):
            sender.send(1, "x")
        network.run()
        assert 40 < len(receiver.received) < 160
        assert network.messages_dropped == 200 - len(receiver.received)


class TestCpuModel:
    def test_cpu_queueing_serialises_processing(self):
        # 10 messages arriving at once at a node with 1 ms per message must
        # finish processing no earlier than 10 ms after the first arrival.
        config = NetworkConfig(latency_base=0.001, latency_mean=0.0,
                               processing_time=0.001, seed=1)
        simulator = Simulator()
        network = Network(simulator, config)
        sender, receiver = Recorder(0), Recorder(1)
        network.add_nodes([sender, receiver])
        network.start()
        for _ in range(10):
            sender.send(1, "x")
        network.run()
        assert len(receiver.received) == 10
        assert simulator.now >= 0.001 + 10 * 0.001 - 1e-9
        assert network.cpu_utilisation(1) > 0.5

    def test_per_node_processing_cost_override(self):
        config = NetworkConfig(latency_base=0.001, latency_mean=0.0,
                               processing_time=0.001, seed=1)
        simulator = Simulator()
        network = Network(simulator, config)
        sender = Recorder(0)
        expensive = Recorder(1, cost=0.05)
        network.add_nodes([sender, expensive])
        network.start()
        sender.send(1, "x")
        network.run()
        assert simulator.now >= 0.05

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            Network(Simulator(), NetworkConfig(processing_time=-1))
        with pytest.raises(ConfigurationError):
            Network(Simulator(), NetworkConfig(drop_probability=1.5))


class TestTimers:
    def test_set_timer_fires(self):
        _, network, nodes = build()
        fired = []
        network.start()
        nodes[0].set_timer(0.05, lambda: fired.append(nodes[0].now))
        network.run()
        assert fired == [pytest.approx(0.05)]
