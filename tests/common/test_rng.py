"""Unit tests for the seeded randomness helpers."""

import pytest

from repro.common.rng import SeededRng, default_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "link", 0) == derive_seed(42, "link", 0)

    def test_labels_change_the_seed(self):
        assert derive_seed(42, "link", 0) != derive_seed(42, "link", 1)

    def test_base_seed_changes_the_seed(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")


class TestSeededRng:
    def test_same_seed_same_stream(self):
        first = SeededRng(7)
        second = SeededRng(7)
        assert [first.randint(0, 100) for _ in range(10)] == [
            second.randint(0, 100) for _ in range(10)
        ]

    def test_fork_gives_independent_reproducible_streams(self):
        parent = SeededRng(7)
        assert parent.fork("a").randint(0, 10**6) == SeededRng(7).fork("a").randint(0, 10**6)
        assert parent.fork("a").randint(0, 10**6) != parent.fork("b").randint(0, 10**6)

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            SeededRng(1).choice([])

    def test_exponential_mean_is_roughly_right(self):
        rng = SeededRng(3)
        samples = [rng.exponential(2.0) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        assert 1.8 < mean < 2.2

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            SeededRng(1).exponential(0)

    def test_zipf_prefers_low_indices(self):
        rng = SeededRng(5)
        samples = [rng.zipf_index(50, skew=1.2) for _ in range(3000)]
        assert samples.count(0) > samples.count(25)
        assert all(0 <= s < 50 for s in samples)

    def test_zipf_zero_skew_is_uniformish(self):
        rng = SeededRng(5)
        samples = [rng.zipf_index(10, skew=0.0) for _ in range(5000)]
        counts = [samples.count(i) for i in range(10)]
        assert min(counts) > 300

    def test_zipf_validates_arguments(self):
        with pytest.raises(ValueError):
            SeededRng(1).zipf_index(0)
        with pytest.raises(ValueError):
            SeededRng(1).zipf_index(10, skew=-1)

    def test_maybe_bounds(self):
        rng = SeededRng(1)
        assert not rng.maybe(0.0)
        assert rng.maybe(1.0)
        with pytest.raises(ValueError):
            rng.maybe(1.5)

    def test_pick_subset_validates_count(self):
        with pytest.raises(ValueError):
            SeededRng(1).pick_subset([1, 2], 3)

    def test_shuffled_does_not_mutate_input(self):
        rng = SeededRng(2)
        original = [1, 2, 3, 4, 5]
        shuffled = rng.shuffled(original)
        assert original == [1, 2, 3, 4, 5]
        assert sorted(shuffled) == original

    def test_state_checkpoint_and_restore(self):
        rng = SeededRng(9)
        state = rng.state()
        first = rng.randint(0, 1000)
        rng.restore(state)
        assert rng.randint(0, 1000) == first

    def test_default_rng_has_conventional_seed(self):
        assert default_rng().seed == default_rng().seed
        assert default_rng(5).seed == 5
