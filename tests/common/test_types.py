"""Unit tests for the domain vocabulary in :mod:`repro.common.types`."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import (
    AccountState,
    MultiTransfer,
    OwnershipMap,
    Transfer,
    TransferId,
    TransferStatus,
    initial_balances,
)


class TestTransfer:
    def test_transfer_id_combines_issuer_and_sequence(self):
        transfer = Transfer("a", "b", 5, issuer=3, sequence=7)
        assert transfer.transfer_id == TransferId(3, 7)

    def test_involves_source_and_destination(self):
        transfer = Transfer("a", "b", 5)
        assert transfer.involves("a")
        assert transfer.involves("b")
        assert not transfer.involves("c")

    def test_direction_predicates(self):
        transfer = Transfer("a", "b", 5)
        assert transfer.is_outgoing_for("a")
        assert transfer.is_incoming_for("b")
        assert not transfer.is_outgoing_for("b")
        assert not transfer.is_incoming_for("a")

    def test_negative_amount_rejected(self):
        with pytest.raises(ConfigurationError):
            Transfer("a", "b", -1)

    def test_transfers_are_hashable_and_comparable(self):
        first = Transfer("a", "b", 5, issuer=1, sequence=2)
        second = Transfer("a", "b", 5, issuer=1, sequence=2)
        assert first == second
        assert len({first, second}) == 1

    def test_distinct_sequences_are_distinct_transfers(self):
        first = Transfer("a", "b", 5, issuer=1, sequence=1)
        second = Transfer("a", "b", 5, issuer=1, sequence=2)
        assert first != second
        assert len({first, second}) == 2


class TestTransferStatus:
    def test_success_is_truthy(self):
        assert TransferStatus.SUCCESS
        assert not TransferStatus.FAILURE
        assert not TransferStatus.PENDING


class TestMultiTransfer:
    def test_total_amount_sums_outputs(self):
        multi = MultiTransfer("a", (("b", 3), ("c", 4)), issuer=0, sequence=1)
        assert multi.amount == 7

    def test_decomposes_into_simple_transfers(self):
        multi = MultiTransfer("a", (("b", 3), ("c", 4)), issuer=2, sequence=9)
        simple = multi.as_simple_transfers()
        assert [t.destination for t in simple] == ["b", "c"]
        assert all(t.source == "a" and t.issuer == 2 and t.sequence == 9 for t in simple)

    def test_requires_at_least_one_output(self):
        with pytest.raises(ConfigurationError):
            MultiTransfer("a", ())

    def test_rejects_negative_output(self):
        with pytest.raises(ConfigurationError):
            MultiTransfer("a", (("b", -1),))


class TestOwnershipMap:
    def test_single_owner_constructor(self):
        ownership = OwnershipMap.single_owner({"alice": 0, "bob": 1})
        assert ownership.owners("alice") == frozenset({0})
        assert ownership.sharing_degree == 1

    def test_one_account_per_process(self):
        ownership = OwnershipMap.one_account_per_process(4)
        assert ownership.accounts == ("0", "1", "2", "3")
        assert ownership.is_owner(2, "2")
        assert not ownership.is_owner(2, "3")

    def test_sharing_degree_is_max_owner_set(self):
        ownership = OwnershipMap({"joint": (0, 1, 2), "solo": (3,)})
        assert ownership.sharing_degree == 3

    def test_accounts_owned_by(self):
        ownership = OwnershipMap({"x": (0,), "y": (0, 1), "z": (1,)})
        assert ownership.accounts_owned_by(0) == ("x", "y")
        assert ownership.accounts_owned_by(1) == ("y", "z")

    def test_unknown_account_has_no_owners(self):
        ownership = OwnershipMap({"x": (0,)})
        assert ownership.owners("nope") == frozenset()
        assert not ownership.is_owner(0, "nope")

    def test_processes_lists_all_mentioned(self):
        ownership = OwnershipMap({"x": (3,), "y": (1, 5)})
        assert ownership.processes == (1, 3, 5)

    def test_empty_map_rejected(self):
        with pytest.raises(ConfigurationError):
            OwnershipMap({})

    def test_containment_iteration_and_length(self):
        ownership = OwnershipMap({"x": (0,), "y": (1,)})
        assert "x" in ownership
        assert list(ownership) == ["x", "y"]
        assert len(ownership) == 2

    def test_equality(self):
        assert OwnershipMap({"x": (0,)}) == OwnershipMap({"x": (0,)})
        assert OwnershipMap({"x": (0,)}) != OwnershipMap({"x": (1,)})

    def test_one_account_per_process_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            OwnershipMap.one_account_per_process(0)


class TestInitialBalances:
    def test_uniform_balance(self):
        balances = initial_balances(["a", "b"], balance=10)
        assert balances == {"a": 10, "b": 10}

    def test_overrides(self):
        balances = initial_balances(["a", "b"], balance=10, overrides={"b": 3})
        assert balances == {"a": 10, "b": 3}

    def test_override_for_unknown_account_rejected(self):
        with pytest.raises(ConfigurationError):
            initial_balances(["a"], overrides={"zzz": 5})

    def test_negative_balance_rejected(self):
        with pytest.raises(ConfigurationError):
            initial_balances(["a"], balance=-1)


class TestAccountState:
    def test_apply_updates_balance_and_logs(self):
        state = AccountState(account="a", balance=10)
        state.apply(Transfer("a", "b", 4))
        state.apply(Transfer("c", "a", 2))
        assert state.balance == 8
        assert len(state.outgoing) == 1
        assert len(state.incoming) == 1
