"""Unit tests for hashing and simulated signatures."""

import pytest

from repro.common.types import Transfer
from repro.crypto.hashing import content_hash, short_hash
from repro.crypto.signatures import SignatureScheme


class TestContentHash:
    def test_equal_values_hash_equally(self):
        a = Transfer("a", "b", 5, issuer=0, sequence=1)
        b = Transfer("a", "b", 5, issuer=0, sequence=1)
        assert content_hash(a) == content_hash(b)

    def test_different_values_hash_differently(self):
        assert content_hash(Transfer("a", "b", 5)) != content_hash(Transfer("a", "b", 6))

    def test_structural_encoding_of_containers(self):
        assert content_hash({"x": 1, "y": 2}) == content_hash({"y": 2, "x": 1})
        assert content_hash([1, 2]) != content_hash([2, 1])
        assert content_hash({1, 2}) == content_hash({2, 1})

    def test_scalar_types_are_distinguished(self):
        assert content_hash(1) != content_hash("1")
        assert content_hash(True) != content_hash(1)
        assert content_hash(None) != content_hash("")

    def test_short_hash_is_prefix(self):
        value = ("x", 1)
        assert content_hash(value).startswith(short_hash(value))

    def test_unhashable_payloads_supported(self):
        assert content_hash([{"a": [1, 2]}]) == content_hash([{"a": [1, 2]}])


class TestSignatures:
    def test_sign_and_verify(self):
        scheme = SignatureScheme(seed=1)
        keypair = scheme.keypair_for(3)
        signature = keypair.sign("hello")
        assert scheme.verify("hello", signature)

    def test_wrong_payload_fails(self):
        scheme = SignatureScheme(seed=1)
        signature = scheme.keypair_for(3).sign("hello")
        assert not scheme.verify("goodbye", signature)

    def test_claimed_signer_must_match(self):
        scheme = SignatureScheme(seed=1)
        signature = scheme.keypair_for(3).sign("hello")
        forged = type(signature)(signer=4, tag=signature.tag)
        assert not scheme.verify("hello", forged)

    def test_verify_all(self):
        scheme = SignatureScheme(seed=1)
        signatures = [scheme.keypair_for(p).sign("x") for p in range(3)]
        assert scheme.verify_all("x", signatures)
        assert not scheme.verify_all("y", signatures)

    def test_different_scheme_seeds_are_incompatible(self):
        signature = SignatureScheme(seed=1).keypair_for(0).sign("x")
        assert not SignatureScheme(seed=2).verify("x", signature)


class TestQuorumCertificates:
    def test_certificate_with_enough_distinct_signers(self):
        scheme = SignatureScheme()
        payload = ("ack", 1)
        signatures = [scheme.keypair_for(p).sign(payload) for p in range(3)]
        certificate = scheme.make_certificate(payload, signatures)
        assert scheme.verify_certificate(payload, certificate, quorum_size=3)
        assert len(certificate) == 3

    def test_duplicate_signers_do_not_inflate_the_quorum(self):
        scheme = SignatureScheme()
        payload = ("ack", 1)
        signature = scheme.keypair_for(0).sign(payload)
        certificate = scheme.make_certificate(payload, [signature, signature, signature])
        assert not scheme.verify_certificate(payload, certificate, quorum_size=2)

    def test_signers_outside_the_allowed_set_ignored(self):
        scheme = SignatureScheme()
        payload = ("ack", 1)
        signatures = [scheme.keypair_for(p).sign(payload) for p in range(3)]
        certificate = scheme.make_certificate(payload, signatures)
        assert not scheme.verify_certificate(
            payload, certificate, quorum_size=3, allowed_signers=frozenset({0, 1})
        )

    def test_certificate_bound_to_payload(self):
        scheme = SignatureScheme()
        signatures = [scheme.keypair_for(p).sign(("ack", 1)) for p in range(3)]
        certificate = scheme.make_certificate(("ack", 1), signatures)
        assert not scheme.verify_certificate(("ack", 2), certificate, quorum_size=3)

    def test_invalid_quorum_size_rejected(self):
        scheme = SignatureScheme()
        certificate = scheme.make_certificate("x", [])
        with pytest.raises(Exception):
            scheme.verify_certificate("x", certificate, quorum_size=0)


class TestSignTelemetry:
    """Key pairs read the metrics registry through their scheme at sign time."""

    def test_late_attached_registry_counts_every_signature(self):
        from repro.obs import MetricsRegistry

        scheme = SignatureScheme(seed=1)
        pair = scheme.keypair_for(3)  # handed out before telemetry exists
        pair.sign("warm-up")  # no registry anywhere yet: nothing to count
        registry = MetricsRegistry()
        scheme.metrics = registry
        pair.sign("a")
        pair.sign("b")
        assert registry.counter("sig.sign").value == 2

    def test_detached_registry_stops_counting(self):
        from repro.obs import MetricsRegistry

        scheme = SignatureScheme(seed=1)
        registry = MetricsRegistry()
        scheme.metrics = registry
        pair = scheme.keypair_for(3)
        pair.sign("a")
        scheme.metrics = None
        pair.sign("b")
        assert registry.counter("sig.sign").value == 1


class TestVerificationCache:
    """Re-verification is memoised; the key covers every verdict input."""

    def test_repeated_certificate_verification_hits_the_cache(self):
        from repro.obs import MetricsRegistry

        scheme = SignatureScheme(seed=1)
        registry = MetricsRegistry()
        scheme.metrics = registry
        payload = ("settle", 1, 2, 3)
        certificate = scheme.make_certificate(
            payload, [scheme.keypair_for(p).sign(payload) for p in range(3)]
        )
        assert scheme.verify_certificate(payload, certificate, quorum_size=3)
        assert registry.counter("sig.verify_certificate_cached").value == 0
        for _ in range(5):  # relay -> inbox -> gate style re-checks
            assert scheme.verify_certificate(payload, certificate, quorum_size=3)
        assert registry.counter("sig.verify_certificate_cached").value == 5
        # The per-signature work ran once per signer, not once per re-check.
        assert registry.counter("sig.verify").value == 3

    def test_cached_and_uncached_verdicts_agree(self):
        scheme = SignatureScheme(seed=1)
        payload = ("x", 9)
        signature = scheme.keypair_for(0).sign(payload)
        assert scheme.verify(payload, signature)
        assert scheme.verify(payload, signature)  # cached
        bad = type(signature)(signer=0, tag="0" * 64)
        assert not scheme.verify(payload, bad)
        assert not scheme.verify(payload, bad)  # cached negative

    def test_quorum_size_and_signer_set_are_part_of_the_key(self):
        scheme = SignatureScheme(seed=1)
        payload = ("y", 1)
        certificate = scheme.make_certificate(
            payload, [scheme.keypair_for(p).sign(payload) for p in range(2)]
        )
        assert scheme.verify_certificate(payload, certificate, quorum_size=2)
        # A stricter question about the same certificate must not reuse the
        # cached "yes".
        assert not scheme.verify_certificate(payload, certificate, quorum_size=3)
        assert not scheme.verify_certificate(
            payload, certificate, quorum_size=2, allowed_signers=frozenset({0})
        )


class TestOneCheckQuorum:
    """verify_quorum/certify: one batch verdict per signer set, memoised so
    a forged member, swapped identity, mutated payload or replayed bundle
    can never alias a warm batch."""

    def _scheme_payload_bundle(self, quorum=3):
        scheme = SignatureScheme(seed=5)
        payload = ("claim", 0, 1, 7)
        bundle = tuple(scheme.keypair_for(p).sign(payload) for p in range(quorum))
        return scheme, payload, bundle

    def test_quorum_of_distinct_valid_signers_passes(self):
        scheme, payload, bundle = self._scheme_payload_bundle()
        assert scheme.verify_quorum(payload, bundle, quorum_size=3)
        assert scheme.verify_quorum(
            payload, bundle, quorum_size=3, allowed_signers=frozenset(range(4))
        )

    def test_duplicate_signers_do_not_inflate_the_quorum(self):
        scheme, payload, bundle = self._scheme_payload_bundle()
        padded = bundle[:2] + (bundle[1],)
        assert not scheme.verify_quorum(payload, padded, quorum_size=3)

    def test_outsider_signer_fails_the_whole_batch(self):
        # Stricter than verify_certificate: a construction site knows which
        # signers it admitted, so an outsider is divergence, not noise.
        scheme, payload, bundle = self._scheme_payload_bundle()
        certificate = scheme.make_certificate(payload, bundle)
        allowed = frozenset({0, 1})
        assert scheme.verify_certificate(
            payload, certificate, quorum_size=2, allowed_signers=allowed
        )
        assert not scheme.verify_quorum(
            payload, bundle, quorum_size=2, allowed_signers=allowed
        )

    def test_invalid_quorum_size_rejected(self):
        scheme, payload, bundle = self._scheme_payload_bundle()
        with pytest.raises(Exception):
            scheme.verify_quorum(payload, bundle, quorum_size=0)

    def test_repeated_checks_hit_the_batch_cache(self):
        from repro.obs import MetricsRegistry

        scheme, payload, bundle = self._scheme_payload_bundle()
        registry = MetricsRegistry()
        scheme.metrics = registry
        assert scheme.verify_quorum(payload, bundle, quorum_size=3)
        assert registry.counter("sig.verify_quorum_cached").value == 0
        for _ in range(6):  # the trust boundaries of both settlement legs
            assert scheme.verify_quorum(payload, bundle, quorum_size=3)
        assert registry.counter("sig.verify_quorum_cached").value == 6
        # The per-signature work ran once per signer, not once per re-check.
        assert registry.counter("sig.verify").value == 3

    def test_forged_member_never_aliases_a_warm_batch(self):
        from repro.crypto.signatures import Signature
        from repro.obs import MetricsRegistry

        scheme, payload, bundle = self._scheme_payload_bundle()
        registry = MetricsRegistry()
        scheme.metrics = registry
        for _ in range(3):
            assert scheme.verify_quorum(payload, bundle, quorum_size=3)
        hits_after_warm = registry.counter("sig.verify_quorum_cached").value
        forged = bundle[:2] + (Signature(signer=2, tag="0" * 64),)
        assert not scheme.verify_quorum(payload, forged, quorum_size=3)
        swapped = bundle[:2] + (Signature(signer=3, tag=bundle[2].tag),)
        assert not scheme.verify_quorum(payload, swapped, quorum_size=3)
        assert not scheme.verify_quorum(("claim", 0, 1, 8), bundle, quorum_size=3)
        # Every forgery took the full per-signature path, not the cache —
        # and the genuine verdict is intact afterwards.
        assert registry.counter("sig.verify_quorum_cached").value == hits_after_warm
        assert scheme.verify_quorum(payload, bundle, quorum_size=3)

    def test_stricter_questions_never_reuse_a_cached_yes(self):
        scheme, payload, bundle = self._scheme_payload_bundle()
        assert scheme.verify_quorum(payload, bundle, quorum_size=3)
        assert not scheme.verify_quorum(payload, bundle, quorum_size=4)
        assert not scheme.verify_quorum(
            payload, bundle, quorum_size=3, allowed_signers=frozenset({0, 1})
        )

    def test_unhashable_payloads_verify_without_the_memo(self):
        scheme = SignatureScheme(seed=5)
        payload = ["batch", [1, 2], {"k": 3}]
        bundle = tuple(scheme.keypair_for(p).sign(payload) for p in range(3))
        assert scheme.verify_quorum(payload, bundle, quorum_size=3)
        assert scheme.verify_quorum(payload, bundle, quorum_size=3)
        assert not scheme.verify_quorum(["batch", [1, 2], {"k": 4}], bundle, quorum_size=3)

    def test_certify_returns_a_certificate_and_primes_downstream_checks(self):
        from repro.obs import MetricsRegistry

        scheme, payload, bundle = self._scheme_payload_bundle()
        registry = MetricsRegistry()
        scheme.metrics = registry
        allowed = frozenset(range(4))
        certificate = scheme.certify(payload, bundle, 3, allowed)
        assert certificate is not None
        assert certificate.signatures == bundle
        # The first downstream re-check is already a cache hit: assembly
        # primed the certificate verdict under the exact downstream key.
        assert scheme.verify_certificate(
            payload, certificate, quorum_size=3, allowed_signers=allowed
        )
        assert registry.counter("sig.verify_certificate_cached").value == 1

    def test_certify_rejects_a_divergent_batch(self):
        from repro.crypto.signatures import Signature

        scheme, payload, bundle = self._scheme_payload_bundle()
        forged = bundle[:2] + (Signature(signer=2, tag="0" * 64),)
        assert scheme.certify(payload, forged, 3, frozenset(range(4))) is None
        under_quorum = bundle[:2]
        assert scheme.certify(payload, under_quorum, 3, frozenset(range(4))) is None
