"""Unit tests for hashing and simulated signatures."""

import pytest

from repro.common.types import Transfer
from repro.crypto.hashing import content_hash, short_hash
from repro.crypto.signatures import SignatureScheme


class TestContentHash:
    def test_equal_values_hash_equally(self):
        a = Transfer("a", "b", 5, issuer=0, sequence=1)
        b = Transfer("a", "b", 5, issuer=0, sequence=1)
        assert content_hash(a) == content_hash(b)

    def test_different_values_hash_differently(self):
        assert content_hash(Transfer("a", "b", 5)) != content_hash(Transfer("a", "b", 6))

    def test_structural_encoding_of_containers(self):
        assert content_hash({"x": 1, "y": 2}) == content_hash({"y": 2, "x": 1})
        assert content_hash([1, 2]) != content_hash([2, 1])
        assert content_hash({1, 2}) == content_hash({2, 1})

    def test_scalar_types_are_distinguished(self):
        assert content_hash(1) != content_hash("1")
        assert content_hash(True) != content_hash(1)
        assert content_hash(None) != content_hash("")

    def test_short_hash_is_prefix(self):
        value = ("x", 1)
        assert content_hash(value).startswith(short_hash(value))

    def test_unhashable_payloads_supported(self):
        assert content_hash([{"a": [1, 2]}]) == content_hash([{"a": [1, 2]}])


class TestSignatures:
    def test_sign_and_verify(self):
        scheme = SignatureScheme(seed=1)
        keypair = scheme.keypair_for(3)
        signature = keypair.sign("hello")
        assert scheme.verify("hello", signature)

    def test_wrong_payload_fails(self):
        scheme = SignatureScheme(seed=1)
        signature = scheme.keypair_for(3).sign("hello")
        assert not scheme.verify("goodbye", signature)

    def test_claimed_signer_must_match(self):
        scheme = SignatureScheme(seed=1)
        signature = scheme.keypair_for(3).sign("hello")
        forged = type(signature)(signer=4, tag=signature.tag)
        assert not scheme.verify("hello", forged)

    def test_verify_all(self):
        scheme = SignatureScheme(seed=1)
        signatures = [scheme.keypair_for(p).sign("x") for p in range(3)]
        assert scheme.verify_all("x", signatures)
        assert not scheme.verify_all("y", signatures)

    def test_different_scheme_seeds_are_incompatible(self):
        signature = SignatureScheme(seed=1).keypair_for(0).sign("x")
        assert not SignatureScheme(seed=2).verify("x", signature)


class TestQuorumCertificates:
    def test_certificate_with_enough_distinct_signers(self):
        scheme = SignatureScheme()
        payload = ("ack", 1)
        signatures = [scheme.keypair_for(p).sign(payload) for p in range(3)]
        certificate = scheme.make_certificate(payload, signatures)
        assert scheme.verify_certificate(payload, certificate, quorum_size=3)
        assert len(certificate) == 3

    def test_duplicate_signers_do_not_inflate_the_quorum(self):
        scheme = SignatureScheme()
        payload = ("ack", 1)
        signature = scheme.keypair_for(0).sign(payload)
        certificate = scheme.make_certificate(payload, [signature, signature, signature])
        assert not scheme.verify_certificate(payload, certificate, quorum_size=2)

    def test_signers_outside_the_allowed_set_ignored(self):
        scheme = SignatureScheme()
        payload = ("ack", 1)
        signatures = [scheme.keypair_for(p).sign(payload) for p in range(3)]
        certificate = scheme.make_certificate(payload, signatures)
        assert not scheme.verify_certificate(
            payload, certificate, quorum_size=3, allowed_signers=frozenset({0, 1})
        )

    def test_certificate_bound_to_payload(self):
        scheme = SignatureScheme()
        signatures = [scheme.keypair_for(p).sign(("ack", 1)) for p in range(3)]
        certificate = scheme.make_certificate(("ack", 1), signatures)
        assert not scheme.verify_certificate(("ack", 2), certificate, quorum_size=3)

    def test_invalid_quorum_size_rejected(self):
        scheme = SignatureScheme()
        certificate = scheme.make_certificate("x", [])
        with pytest.raises(Exception):
            scheme.verify_certificate("x", certificate, quorum_size=0)


class TestSignTelemetry:
    """Key pairs read the metrics registry through their scheme at sign time."""

    def test_late_attached_registry_counts_every_signature(self):
        from repro.obs import MetricsRegistry

        scheme = SignatureScheme(seed=1)
        pair = scheme.keypair_for(3)  # handed out before telemetry exists
        pair.sign("warm-up")  # no registry anywhere yet: nothing to count
        registry = MetricsRegistry()
        scheme.metrics = registry
        pair.sign("a")
        pair.sign("b")
        assert registry.counter("sig.sign").value == 2

    def test_detached_registry_stops_counting(self):
        from repro.obs import MetricsRegistry

        scheme = SignatureScheme(seed=1)
        registry = MetricsRegistry()
        scheme.metrics = registry
        pair = scheme.keypair_for(3)
        pair.sign("a")
        scheme.metrics = None
        pair.sign("b")
        assert registry.counter("sig.sign").value == 1


class TestVerificationCache:
    """Re-verification is memoised; the key covers every verdict input."""

    def test_repeated_certificate_verification_hits_the_cache(self):
        from repro.obs import MetricsRegistry

        scheme = SignatureScheme(seed=1)
        registry = MetricsRegistry()
        scheme.metrics = registry
        payload = ("settle", 1, 2, 3)
        certificate = scheme.make_certificate(
            payload, [scheme.keypair_for(p).sign(payload) for p in range(3)]
        )
        assert scheme.verify_certificate(payload, certificate, quorum_size=3)
        assert registry.counter("sig.verify_certificate_cached").value == 0
        for _ in range(5):  # relay -> inbox -> gate style re-checks
            assert scheme.verify_certificate(payload, certificate, quorum_size=3)
        assert registry.counter("sig.verify_certificate_cached").value == 5
        # The per-signature work ran once per signer, not once per re-check.
        assert registry.counter("sig.verify").value == 3

    def test_cached_and_uncached_verdicts_agree(self):
        scheme = SignatureScheme(seed=1)
        payload = ("x", 9)
        signature = scheme.keypair_for(0).sign(payload)
        assert scheme.verify(payload, signature)
        assert scheme.verify(payload, signature)  # cached
        bad = type(signature)(signer=0, tag="0" * 64)
        assert not scheme.verify(payload, bad)
        assert not scheme.verify(payload, bad)  # cached negative

    def test_quorum_size_and_signer_set_are_part_of_the_key(self):
        scheme = SignatureScheme(seed=1)
        payload = ("y", 1)
        certificate = scheme.make_certificate(
            payload, [scheme.keypair_for(p).sign(payload) for p in range(2)]
        )
        assert scheme.verify_certificate(payload, certificate, quorum_size=2)
        # A stricter question about the same certificate must not reuse the
        # cached "yes".
        assert not scheme.verify_certificate(payload, certificate, quorum_size=3)
        assert not scheme.verify_certificate(
            payload, certificate, quorum_size=2, allowed_signers=frozenset({0})
        )
