"""Tests for the PBFT substrate and the consensus-based baseline."""

import pytest

from repro.bft.consensus_transfer import ConsensusTransferSystem
from repro.bft.messages import ClientRequest
from repro.bft.pbft import PbftConfig
from repro.bft.smr import LedgerStateMachine
from repro.common.errors import ConfigurationError
from repro.common.types import OwnershipMap, Transfer
from repro.mp.consensusless_transfer import account_of
from repro.mp.system import ClientSubmission


def build(fast_network, n=4, batch_size=4, initial_balance=100):
    return ConsensusTransferSystem(
        process_count=n,
        initial_balance=initial_balance,
        network_config=fast_network,
        pbft_config=PbftConfig(batch_size=batch_size),
        seed=3,
    )


def ring_workload(n, per_process=2, amount=3):
    return [
        ClientSubmission(
            time=0.0001 * (issuer + 1),
            issuer=issuer,
            destination=account_of((issuer + 1) % n),
            amount=amount,
        )
        for issuer in range(n)
        for _ in range(per_process)
    ]


class TestLedgerStateMachine:
    def _request(self, issuer, sequence, amount, source=None, destination="1"):
        transfer = Transfer(source or str(issuer), destination, amount, issuer=issuer, sequence=sequence)
        return ClientRequest(issuer=issuer, client_sequence=sequence, transfer=transfer, submitted_at=0.0)

    def test_execution_applies_valid_transfers(self):
        ownership = OwnershipMap.one_account_per_process(3)
        machine = LedgerStateMachine(ownership, {"0": 10, "1": 0, "2": 0})
        ordered = machine.execute(self._request(0, 1, 4))
        assert ordered.success
        assert machine.balance("1") == 4

    def test_execution_rejects_overdraft_deterministically(self):
        ownership = OwnershipMap.one_account_per_process(3)
        machine = LedgerStateMachine(ownership, {"0": 10, "1": 0, "2": 0})
        assert machine.execute(self._request(0, 1, 8)).success
        assert not machine.execute(self._request(0, 2, 8)).success
        assert machine.total_supply() == 10

    def test_execution_digest_captures_order_and_outcome(self):
        ownership = OwnershipMap.one_account_per_process(3)
        machine = LedgerStateMachine(ownership, {"0": 10, "1": 0, "2": 0})
        machine.execute(self._request(0, 1, 4))
        assert machine.execution_digest() == ((0, 1, True),)


class TestPbftOrdering:
    def test_all_requests_execute_and_replicas_agree(self, fast_network):
        system = build(fast_network)
        submissions = ring_workload(4, per_process=3)
        system.schedule_submissions(submissions)
        result = system.run()
        assert result.committed_count == len(submissions)
        assert system.replicas_agree()

    def test_every_replica_executes_every_request(self, fast_network):
        system = build(fast_network)
        submissions = ring_workload(4, per_process=2)
        system.schedule_submissions(submissions)
        system.run()
        for replica in system.replicas.values():
            assert replica.executed_count == len(submissions)

    def test_total_supply_conserved(self, fast_network):
        system = build(fast_network)
        system.schedule_submissions(ring_workload(4, per_process=3))
        system.run()
        assert system.total_supply_at(0) == 4 * 100

    def test_overdraft_requests_fail_but_complete(self, fast_network):
        system = build(fast_network, initial_balance=5)
        system.schedule_submissions(
            [
                ClientSubmission(time=0.001, issuer=0, destination=account_of(1), amount=4),
                ClientSubmission(time=0.01, issuer=0, destination=account_of(1), amount=4),
            ]
        )
        result = system.run()
        assert result.committed_count == 1
        assert len(result.rejected) == 1

    def test_batching_respects_batch_size(self, fast_network):
        system = build(fast_network, batch_size=2)
        system.schedule_submissions(ring_workload(4, per_process=2))
        system.run()
        leader = system.replicas[0]
        assert leader._next_batch_sequence - 1 >= 4  # at least 8 requests / batch_size 2

    def test_client_is_sequential(self, fast_network):
        system = build(fast_network)
        system.schedule_submissions(
            [ClientSubmission(time=0.001, issuer=1, destination=account_of(2), amount=1)] * 3
        )
        system.run()
        replica = system.replicas[1]
        completions = [record.completed_at for record in replica.completed]
        submissions = [record.submitted_at for record in replica.completed]
        assert len(completions) == 3
        # Each request is only issued after the previous one completed.
        assert submissions == sorted(submissions)

    def test_minimum_replica_count(self):
        with pytest.raises(ConfigurationError):
            ConsensusTransferSystem(process_count=3)

    def test_invalid_batch_config_rejected(self):
        with pytest.raises(ConfigurationError):
            PbftConfig(batch_size=0).validate()

    def test_latency_includes_ordering_delay(self, fast_network):
        system = build(fast_network)
        system.schedule_submissions(ring_workload(4, per_process=1))
        result = system.run()
        # At least three one-way delays (pre-prepare, prepare, commit).
        assert result.average_latency >= 3 * fast_network.latency_base
