"""Unit tests for the owner-quorum sequencing service (Section 6)."""

import pytest

from repro.bft.sequencer import OwnerQuorumSequencer, owner_quorum_size
from repro.common.errors import ConfigurationError
from repro.common.types import Transfer
from repro.crypto.signatures import SignatureScheme


OWNERS = frozenset({0, 1, 2})


def make_sequencers(scheme=None):
    scheme = scheme or SignatureScheme()
    owners_of = {"joint": OWNERS}
    return {
        pid: OwnerQuorumSequencer(own_id=pid, owners_of=owners_of, scheme=scheme)
        for pid in OWNERS
    }


def transfer(issuer=0, amount=5):
    return Transfer("joint", "x", amount, issuer=issuer, sequence=0)


class TestQuorumSize:
    @pytest.mark.parametrize("k,quorum", [(1, 1), (2, 2), (3, 2), (4, 3), (6, 4), (9, 6)])
    def test_quorum_sizes(self, k, quorum):
        assert owner_quorum_size(k) == quorum

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            owner_quorum_size(0)


class TestSequencing:
    def test_proposal_certified_after_quorum_of_endorsements(self):
        sequencers = make_sequencers()
        request = sequencers[0].make_request("joint", transfer())
        endorsements = [sequencers[pid].handle_request(request) for pid in (0, 1, 2)]
        assert all(endorsements)
        certified = None
        for endorsement in endorsements:
            certified = sequencers[0].handle_endorsement(endorsement) or certified
        assert certified is not None
        assert certified.sequence == 1
        assert certified.verify(SignatureScheme(), OWNERS)

    def test_endorser_refuses_wrong_sequence_number(self):
        sequencers = make_sequencers()
        request = sequencers[0].make_request("joint", transfer())
        stale = type(request)(
            channel=request.channel, account="joint", sequence=5,
            transfer=request.transfer, proposer=0,
        )
        assert sequencers[1].handle_request(stale) is None

    def test_endorser_never_signs_two_transfers_for_one_slot(self):
        sequencers = make_sequencers()
        first = sequencers[0].make_request("joint", transfer(issuer=0, amount=5))
        assert sequencers[1].handle_request(first) is not None
        conflicting = type(first)(
            channel=first.channel, account="joint", sequence=1,
            transfer=transfer(issuer=2, amount=9), proposer=2,
        )
        assert sequencers[1].handle_request(conflicting) is None

    def test_re_request_of_same_transfer_is_idempotent(self):
        sequencers = make_sequencers()
        request = sequencers[0].make_request("joint", transfer())
        assert sequencers[1].handle_request(request) is not None
        assert sequencers[1].handle_request(request) is not None

    def test_non_owner_cannot_propose_or_endorse(self):
        scheme = SignatureScheme()
        outsider = OwnerQuorumSequencer(own_id=9, owners_of={"joint": OWNERS}, scheme=scheme)
        with pytest.raises(ConfigurationError):
            outsider.make_request("joint", transfer())
        sequencers = make_sequencers(scheme)
        request = sequencers[0].make_request("joint", transfer())
        assert outsider.handle_request(request) is None

    def test_next_sequence_advances_with_deliveries(self):
        sequencers = make_sequencers()
        assert sequencers[1].next_sequence("joint") == 1
        sequencers[1].note_delivered("joint", 1)
        assert sequencers[1].next_sequence("joint") == 2

    def test_forged_endorsement_rejected(self):
        scheme = SignatureScheme()
        sequencers = make_sequencers(scheme)
        request = sequencers[0].make_request("joint", transfer())
        endorsement = sequencers[1].handle_request(request)
        forged = type(endorsement)(
            channel=endorsement.channel, account="joint", sequence=1,
            transfer=endorsement.transfer, endorser=2, signature=endorsement.signature,
        )
        assert sequencers[0].handle_endorsement(forged) is None

    def test_certificate_fails_verification_with_wrong_owner_set(self):
        sequencers = make_sequencers()
        request = sequencers[0].make_request("joint", transfer())
        certified = None
        for pid in OWNERS:
            endorsement = sequencers[pid].handle_request(request)
            certified = sequencers[0].handle_endorsement(endorsement) or certified
        assert certified is not None
        assert not certified.verify(SignatureScheme(), frozenset({7, 8, 9}))
