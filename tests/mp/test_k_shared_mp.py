"""Tests for the k-shared message-passing protocol (Section 6, experiment E7)."""

import pytest

from repro.common.types import OwnershipMap
from repro.eval.experiments import k_shared_experiment
from repro.mp.k_shared import KSharedSystem


def build(fast_network, silent=()):
    ownership = OwnershipMap(
        {"joint": (0, 1, 2), "3": (3,), "4": (4,), "5": (5,)}
    )
    balances = {"joint": 100, "3": 50, "4": 50, "5": 50}
    return KSharedSystem(
        ownership=ownership,
        process_count=6,
        initial_balances=balances,
        network_config=fast_network,
        silent_processes=silent,
        seed=5,
    )


class TestSharedAccountOperation:
    def test_multiple_owners_can_spend_from_the_shared_account(self, fast_network):
        system = build(fast_network)
        system.submit(0.001, 0, "joint", "3", 10)
        system.submit(0.001, 1, "joint", "4", 20)
        system.submit(0.002, 2, "joint", "5", 30)
        result = system.run(until=2.0)
        assert result.committed_count == 3
        balances = system.balances_at(4)
        assert balances["joint"] == 40
        assert balances["3"] == 60 and balances["4"] == 70 and balances["5"] == 80

    def test_correct_views_agree(self, fast_network):
        system = build(fast_network)
        system.submit(0.001, 0, "joint", "3", 5)
        system.submit(0.001, 3, "3", "joint", 7)
        system.run(until=2.0)
        views = [node.all_known_balances() for node in system.correct_nodes()]
        assert all(view == views[0] for view in views)

    def test_shared_account_never_overdrawn_under_contention(self, fast_network):
        system = build(fast_network)
        # Three owners together try to spend 150 from a balance of 100.
        system.submit(0.001, 0, "joint", "3", 50)
        system.submit(0.001, 1, "joint", "4", 50)
        system.submit(0.001, 2, "joint", "5", 50)
        result = system.run(until=2.0)
        for node in system.correct_nodes():
            assert node.balance_of("joint") >= 0
        assert result.committed_count <= 3

    def test_non_owner_submission_fails(self, fast_network):
        system = build(fast_network)
        system.submit(0.001, 3, "joint", "3", 5)
        result = system.run(until=1.0)
        assert result.committed_count == 0
        assert len(result.rejected) == 1

    def test_singleton_accounts_work_through_the_same_path(self, fast_network):
        system = build(fast_network)
        system.submit(0.001, 3, "3", "4", 5)
        result = system.run(until=1.0)
        assert result.committed_count == 1
        assert system.balances_at(5)["4"] == 55


class TestCompromisedAccount:
    def test_compromised_shared_account_does_not_affect_others(self, fast_network):
        # Silence two of the three owners (including the sequencing leader):
        # the shared account stalls but singleton accounts keep working.
        system = build(fast_network, silent=(0, 1))
        system.submit(0.001, 2, "joint", "3", 10)   # needs a quorum of owners -> stalls
        system.submit(0.002, 3, "3", "4", 5)
        system.submit(0.003, 4, "4", "5", 5)
        result = system.run(until=1.0)
        committed_sources = [record.transfer.source for record in result.committed]
        assert "3" in committed_sources and "4" in committed_sources
        assert "joint" not in committed_sources

    def test_k_shared_experiment_outcome(self, fast_network):
        outcome = k_shared_experiment(
            owners_per_shared_account=3,
            singleton_accounts=3,
            transfers_per_owner=1,
            compromise=True,
            network=fast_network,
        )
        assert outcome.healthy_account_liveness
        assert outcome.committed_on_compromised_account == 0
        assert outcome.views_agree

    def test_uncompromised_shared_account_has_liveness(self, fast_network):
        outcome = k_shared_experiment(
            owners_per_shared_account=2,
            singleton_accounts=3,
            transfers_per_owner=1,
            compromise=False,
            network=fast_network,
        )
        assert outcome.committed_on_compromised_account > 0
        assert outcome.views_agree
