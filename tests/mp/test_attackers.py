"""Tests for the Byzantine attack nodes (experiment E4)."""

import pytest

from repro.byzantine.faults import FaultKind, FaultModel
from repro.eval.experiments import ExperimentConfig, double_spend_experiment
from repro.mp.consensusless_transfer import account_of
from repro.mp.system import ClientSubmission, ConsensuslessSystem


def fast_config(fast_network):
    return ExperimentConfig(transfers_per_process=2, network=fast_network, seed=3)


class TestDoubleSpendAttack:
    @pytest.mark.parametrize("broadcast", ["bracha", "echo"])
    def test_no_correct_process_validates_both_conflicting_transfers(
        self, broadcast, fast_network
    ):
        fault_model = FaultModel(total_processes=6, faults={5: FaultKind.DOUBLE_SPEND})
        system = ConsensuslessSystem(
            process_count=6,
            initial_balance=50,
            broadcast=broadcast,
            network_config=fast_network,
            fault_model=fault_model,
            seed=2,
        )
        system.schedule_submissions(
            [ClientSubmission(time=0.001 * i, issuer=i, destination=account_of((i + 1) % 5), amount=2)
             for i in range(5)]
        )
        system.trigger_attacks(0.0005)
        system.run()
        attacker = system.nodes[5]
        transfer_a, transfer_b = attacker.conflicting_transfers
        assert transfer_a is not None and transfer_b is not None
        for node in system.correct_nodes():
            history = node.hist.get(account_of(5), set())
            assert not (transfer_a in history and transfer_b in history)

    @pytest.mark.parametrize("overlap", [0.0, 0.5, 1.0])
    def test_double_spend_experiment_is_safe_for_any_overlap(self, overlap, fast_network):
        outcome = double_spend_experiment(
            process_count=6, config=fast_config(fast_network), overlap=overlap
        )
        assert not outcome.conflicting_validated_anywhere
        assert outcome.definition_1_report.ok
        assert outcome.supply_conserved

    def test_honest_transfers_commit_despite_the_attack(self, fast_network):
        outcome = double_spend_experiment(process_count=6, config=fast_config(fast_network))
        assert outcome.committed_honest_transfers > 0


class TestSilentNode:
    def test_silent_node_sends_nothing(self, fast_network):
        fault_model = FaultModel(total_processes=5, faults={4: FaultKind.SILENT})
        system = ConsensuslessSystem(
            process_count=5, network_config=fast_network, fault_model=fault_model, seed=1
        )
        system.schedule_submissions(
            [ClientSubmission(time=0.001, issuer=0, destination=account_of(1), amount=1)]
        )
        system.run()
        assert system.nodes[4].stats.sent == 0
