"""Tests for the Figure 4 protocol over the simulated network (experiment E4)."""

import pytest

from repro.byzantine.faults import FaultKind, FaultModel
from repro.mp.consensusless_transfer import account_of
from repro.mp.system import ClientSubmission, ConsensuslessSystem
from repro.spec.byzantine_spec import ByzantineAssetTransferChecker


def build_system(n=5, broadcast="bracha", fast_network=None, **kwargs):
    return ConsensuslessSystem(
        process_count=n,
        initial_balance=100,
        broadcast=broadcast,
        network_config=fast_network,
        seed=9,
        **kwargs,
    )


def ring_workload(n, per_process=2, amount=3):
    submissions = []
    for issuer in range(n):
        for index in range(per_process):
            submissions.append(
                ClientSubmission(
                    time=0.0001 * (issuer + 1),
                    issuer=issuer,
                    destination=account_of((issuer + 1 + index) % n),
                    amount=amount,
                )
            )
    return submissions


class TestHappyPath:
    @pytest.mark.parametrize("broadcast", ["bracha", "echo"])
    def test_all_transfers_commit(self, broadcast, fast_network):
        system = build_system(broadcast=broadcast, fast_network=fast_network)
        submissions = ring_workload(5)
        system.schedule_submissions(submissions)
        result = system.run()
        assert result.committed_count == len(submissions)
        assert not result.rejected

    def test_correct_views_agree_on_balances(self, fast_network):
        system = build_system(fast_network=fast_network)
        system.schedule_submissions(ring_workload(5, per_process=3))
        system.run()
        views = [system.balances_at(pid) for pid in range(5)]
        assert all(view == views[0] for view in views)

    def test_total_supply_conserved(self, fast_network):
        system = build_system(fast_network=fast_network)
        system.schedule_submissions(ring_workload(5, per_process=3))
        system.run()
        assert system.total_supply_at(0) == 5 * 100

    def test_definition_1_holds(self, fast_network):
        system = build_system(fast_network=fast_network)
        system.schedule_submissions(ring_workload(5, per_process=3))
        system.run()
        checker = ByzantineAssetTransferChecker(system.initial_balances())
        report = checker.check(system.observations())
        assert report.ok, report.violations

    def test_latencies_recorded(self, fast_network):
        system = build_system(fast_network=fast_network)
        system.schedule_submissions(ring_workload(5))
        result = system.run()
        assert len(result.latencies) == result.committed_count
        assert all(latency > 0 for latency in result.latencies)
        assert result.average_latency > 0

    def test_exactly_one_broadcast_per_transfer(self, fast_network):
        # The protocol's complexity claim: one secure-broadcast instance per
        # transfer and no extra protocol messages.
        system = build_system(fast_network=fast_network)
        submissions = ring_workload(5, per_process=2)
        system.schedule_submissions(submissions)
        system.run()
        for node in system.correct_nodes():
            assert node.broadcast_layer.stats.broadcasts_started == 2


class TestLocalChecks:
    def test_insufficient_balance_fails_immediately(self, fast_network):
        system = build_system(fast_network=fast_network)
        system.schedule_submissions(
            [ClientSubmission(time=0.001, issuer=0, destination=account_of(1), amount=1_000)]
        )
        result = system.run()
        assert result.committed_count == 0
        assert len(result.rejected) == 1

    def test_spending_received_funds_works_across_nodes(self, fast_network):
        system = build_system(fast_network=fast_network)
        # 0 sends 80 to 1; later 1 sends 150 to 2 (only possible with 0's 80).
        system.schedule_submissions(
            [
                ClientSubmission(time=0.001, issuer=0, destination=account_of(1), amount=80),
                ClientSubmission(time=0.2, issuer=1, destination=account_of(2), amount=150),
            ]
        )
        result = system.run()
        assert result.committed_count == 2
        assert system.balances_at(3)[account_of(2)] == 250

    def test_reads_reflect_validated_history(self, fast_network):
        system = build_system(fast_network=fast_network)
        system.schedule_submissions(
            [ClientSubmission(time=0.001, issuer=0, destination=account_of(1), amount=10)]
        )
        system.run()
        node = system.correct_node(1)
        assert node.read() == 110
        assert node.read(account_of(0)) == 90

    def test_sequential_client_queues_submissions(self, fast_network):
        system = build_system(fast_network=fast_network)
        node = system.correct_node(0)
        system.schedule_submissions(
            [
                ClientSubmission(time=0.001, issuer=0, destination=account_of(1), amount=1),
                ClientSubmission(time=0.001, issuer=0, destination=account_of(2), amount=1),
            ]
        )
        system.run()
        assert len(node.completed) == 2
        first, second = node.completed
        assert first.completed_at <= second.submitted_at or second.submitted_at <= first.completed_at
        assert not node.has_pending_transfer


class TestFaults:
    def test_silent_owner_only_hurts_itself(self, fast_network):
        fault_model = FaultModel(total_processes=5, faults={4: FaultKind.CRASH})
        system = build_system(fast_network=fast_network, fault_model=fault_model)
        submissions = [
            ClientSubmission(time=0.001 * i, issuer=i, destination=account_of((i + 1) % 4), amount=2)
            for i in range(4)
        ]
        system.schedule_submissions(submissions)
        result = system.run()
        assert result.committed_count == 4

    def test_minimum_system_size_enforced(self):
        with pytest.raises(Exception):
            ConsensuslessSystem(process_count=3)

    def test_mismatched_fault_model_rejected(self):
        with pytest.raises(Exception):
            ConsensuslessSystem(process_count=5, fault_model=FaultModel.all_correct(4))
