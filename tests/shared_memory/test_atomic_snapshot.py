"""Unit tests for the primitive atomic-snapshot object."""

import pytest

from repro.common.errors import ConfigurationError
from repro.shared_memory.access import run_sequentially
from repro.shared_memory.atomic_snapshot import AtomicSnapshot


class TestAtomicSnapshot:
    def test_initial_segments(self):
        memory = AtomicSnapshot(size=3, initial=0)
        assert memory.snapshot_now() == (0, 0, 0)

    def test_update_changes_only_own_segment(self):
        memory = AtomicSnapshot(size=3)
        run_sequentially(memory.update(1, "x"))
        assert memory.snapshot_now() == (None, "x", None)

    def test_generator_snapshot_matches_immediate(self):
        memory = AtomicSnapshot(size=2, initial=0)
        memory.update_now(0, 5)
        assert run_sequentially(memory.snapshot(0)) == memory.snapshot_now()

    def test_out_of_range_process_rejected(self):
        memory = AtomicSnapshot(size=2)
        with pytest.raises(ConfigurationError):
            memory.update_now(5, "x")

    def test_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AtomicSnapshot(size=0)

    def test_access_counters(self):
        memory = AtomicSnapshot(size=2)
        memory.update_now(0, 1)
        memory.snapshot_now()
        assert memory.update_count == 1
        assert memory.snapshot_count == 1
        assert memory.access_count == 2

    def test_len_reports_segment_count(self):
        assert len(AtomicSnapshot(size=4)) == 4
