"""Unit tests for the cooperative scheduler (interleavings, crashes)."""

import pytest

from repro.common.errors import SimulationError
from repro.common.rng import SeededRng
from repro.shared_memory.access import atomic
from repro.shared_memory.register import AtomicRegister
from repro.shared_memory.scheduler import (
    CrashPlan,
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    enumerate_schedules,
    yield_point,
)


def counter_program(register, increments):
    """A racy read-modify-write counter program (not atomic on purpose)."""

    def program():
        for _ in range(increments):
            value = yield from register.read()
            yield from register.write(value + 1)
        return True

    return program()


class TestRoundRobin:
    def test_all_programs_complete(self):
        register = AtomicRegister(initial=0)
        outcome = RoundRobinScheduler().run(
            {0: counter_program(register, 2), 1: counter_program(register, 2)}
        )
        assert outcome.results == {0: True, 1: True}
        assert outcome.unfinished == ()

    def test_lost_update_race_is_observable(self):
        # Round-robin interleaving of read-modify-write loses updates,
        # demonstrating that the scheduler really interleaves at access level.
        register = AtomicRegister(initial=0)
        RoundRobinScheduler().run(
            {0: counter_program(register, 3), 1: counter_program(register, 3)}
        )
        assert register.read_now() < 6

    def test_step_counts_reported(self):
        register = AtomicRegister(initial=0)
        outcome = RoundRobinScheduler().run({0: counter_program(register, 2)})
        assert outcome.steps[0] >= 4
        assert outcome.total_steps == outcome.steps[0]


class TestRandomScheduler:
    def test_deterministic_given_seed(self):
        outcomes = []
        for _ in range(2):
            register = AtomicRegister(initial=0)
            outcome = RandomScheduler(SeededRng(5)).run(
                {0: counter_program(register, 3), 1: counter_program(register, 3)}
            )
            outcomes.append((outcome.schedule, register.read_now()))
        assert outcomes[0] == outcomes[1]

    def test_different_seeds_differ(self):
        schedules = set()
        for seed in range(6):
            register = AtomicRegister(initial=0)
            outcome = RandomScheduler(SeededRng(seed)).run(
                {0: counter_program(register, 3), 1: counter_program(register, 3)}
            )
            schedules.add(outcome.schedule)
        assert len(schedules) > 1


class TestFixedScheduler:
    def test_follows_prefix_then_round_robin(self):
        register = AtomicRegister(initial=0)
        scheduler = FixedScheduler(schedule=[0, 0, 0, 0])
        outcome = scheduler.run(
            {0: counter_program(register, 2), 1: counter_program(register, 1)}
        )
        assert outcome.schedule[:4] == (0, 0, 0, 0)
        assert outcome.unfinished == ()


class TestCrashes:
    def test_crashed_process_never_finishes(self):
        register = AtomicRegister(initial=0)
        plan = CrashPlan(crash_after={1: 1})
        outcome = RoundRobinScheduler(crash_plan=plan).run(
            {0: counter_program(register, 2), 1: counter_program(register, 2)}
        )
        assert 1 in outcome.crashed
        assert 1 not in outcome.results
        assert outcome.results[0] is True

    def test_crash_at_constructor(self):
        plan = CrashPlan.crash_at(p0=3)
        assert plan.crashes(0, 3)
        assert not plan.crashes(0, 2)
        assert not plan.crashes(1, 100)

    def test_wait_freedom_guard_triggers_on_runaway_program(self):
        def forever():
            while True:
                yield from yield_point()

        with pytest.raises(SimulationError):
            RoundRobinScheduler(max_steps=100).run({0: forever()})


class TestEnumerateSchedules:
    def test_counts_interleavings(self):
        schedules = enumerate_schedules({0: 2, 1: 2})
        assert len(schedules) == 6  # C(4, 2)
        assert all(schedule.count(0) == 2 and schedule.count(1) == 2 for schedule in schedules)

    def test_limit_respected(self):
        assert len(enumerate_schedules({0: 3, 1: 3}, limit=5)) == 5


class TestAtomicHelper:
    def test_atomic_yields_once_and_returns(self):
        def program():
            value = yield from atomic("compute", lambda: 41)
            return value + 1

        outcome = RoundRobinScheduler().run({0: program()})
        assert outcome.results[0] == 42
