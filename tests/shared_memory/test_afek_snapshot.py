"""Tests for the register-based Afek et al. snapshot construction.

The key property: under arbitrary interleavings, the histories it produces
are linearizable against the same sequential behaviour as the primitive
atomic-snapshot object — so the Figure 1 algorithm can run on either.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import SeededRng
from repro.shared_memory.access import run_sequentially
from repro.shared_memory.afek_snapshot import AfekSnapshot
from repro.shared_memory.runtime import SharedMemoryProgram, SharedMemoryRuntime
from repro.shared_memory.scheduler import RandomScheduler, RoundRobinScheduler
from repro.spec.linearizability import LinearizabilityChecker
from repro.spec.object_type import SequentialObjectType, Transition


class SnapshotVectorSpec(SequentialObjectType):
    """Sequential spec of an N-segment snapshot object (for the checker)."""

    def __init__(self, size, initial=None):
        self._size = size
        self._initial = initial

    def initial_state(self):
        return tuple(self._initial for _ in range(self._size))

    def _apply_update(self, state, process, index, value):
        as_list = list(state)
        as_list[index] = value
        return Transition(new_state=tuple(as_list), response=None)

    def _apply_snapshot(self, state, process):
        return Transition(new_state=state, response=state)


class TestSequentialBehaviour:
    def test_update_then_snapshot(self):
        memory = AfekSnapshot(size=3, initial=0)
        run_sequentially(memory.update(1, 7))
        assert run_sequentially(memory.snapshot(0)) == (0, 7, 0)

    def test_immediate_mode(self):
        memory = AfekSnapshot(size=2, initial=None)
        memory.update_now(0, "a")
        memory.update_now(1, "b")
        assert memory.snapshot_now() == ("a", "b")

    def test_repeated_updates_overwrite(self):
        memory = AfekSnapshot(size=2, initial=0)
        for value in range(5):
            memory.update_now(0, value)
        assert memory.snapshot_now()[0] == 4

    def test_out_of_range_process_rejected(self):
        memory = AfekSnapshot(size=2)
        with pytest.raises(ConfigurationError):
            run_sequentially(memory.update(9, "x"))

    def test_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AfekSnapshot(size=0)

    def test_access_count_grows(self):
        memory = AfekSnapshot(size=2, initial=0)
        memory.update_now(0, 1)
        assert memory.access_count > 0


class TestConcurrentLinearizability:
    def _run_schedule(self, scheduler, size=3):
        memory = AfekSnapshot(size=size, initial=0)
        programs = []
        for process in range(size):
            program = SharedMemoryProgram(process)
            program.add(("update", process, process + 10), lambda p=process: memory.update(p, p + 10))
            program.add(("snapshot",), lambda p=process: memory.snapshot(p))
            program.add(("update", process, process + 20), lambda p=process: memory.update(p, p + 20))
            program.add(("snapshot",), lambda p=process: memory.snapshot(p))
            programs.append(program)
        runtime = SharedMemoryRuntime(scheduler)
        outcome = runtime.run(programs)
        spec = SnapshotVectorSpec(size=size, initial=0)
        return LinearizabilityChecker(spec).check(outcome.history), outcome

    def test_round_robin_interleaving_is_linearizable(self):
        result, _ = self._run_schedule(RoundRobinScheduler())
        assert result.linearizable

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_random_interleavings_are_linearizable(self, seed):
        result, _ = self._run_schedule(RandomScheduler(SeededRng(seed)))
        assert result.linearizable

    def test_snapshots_never_show_torn_state(self):
        # A snapshot must reflect each segment's value at a single point;
        # in particular it can never show a value that was never written.
        _, outcome = self._run_schedule(RandomScheduler(SeededRng(99)))
        written = {None, 0, 10, 11, 12, 20, 21, 22}
        for responses in outcome.results.values():
            for response in responses:
                if isinstance(response, tuple):
                    assert set(response) <= written
