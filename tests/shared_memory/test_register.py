"""Unit tests for atomic registers and register arrays."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.shared_memory.access import run_sequentially
from repro.shared_memory.register import AtomicRegister, RegisterArray, make_registers


class TestAtomicRegister:
    def test_initial_value_and_read(self):
        register = AtomicRegister(initial=7)
        assert run_sequentially(register.read()) == 7

    def test_write_then_read(self):
        register = AtomicRegister()
        run_sequentially(register.write("x"))
        assert run_sequentially(register.read()) == "x"

    def test_immediate_mode(self):
        register = AtomicRegister()
        register.write_now(3)
        assert register.read_now() == 3

    def test_single_writer_enforced(self):
        register = AtomicRegister(single_writer_id=1)
        register.write_now("ok", process=1)
        with pytest.raises(SimulationError):
            register.write_now("bad", process=2)

    def test_access_counters(self):
        register = AtomicRegister()
        register.write_now(1)
        register.read_now()
        register.read_now()
        assert register.write_count == 1
        assert register.read_count == 2


class TestRegisterArray:
    def test_per_slot_isolation(self):
        array = RegisterArray(size=3, initial=None)
        run_sequentially(array.write(1, "hello"))
        assert array.snapshot_now() == [None, "hello", None]

    def test_collect_reads_every_slot(self):
        array = RegisterArray(size=3, initial=0)
        run_sequentially(array.write(2, 9))
        assert run_sequentially(array.collect()) == [0, 0, 9]

    def test_single_writer_arrays_bind_slot_to_process(self):
        array = RegisterArray(size=2, single_writer=True)
        run_sequentially(array.write(0, "mine", process=0))
        with pytest.raises(SimulationError):
            run_sequentially(array.write(0, "stolen", process=1))

    def test_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RegisterArray(size=0)

    def test_total_accesses(self):
        array = RegisterArray(size=2)
        run_sequentially(array.collect())
        assert array.total_accesses == 2

    def test_make_registers_helper(self):
        registers = make_registers(["a", "b"], initial=1)
        assert len(registers) == 2
        assert registers[0].read_now() == 1
