"""Unit tests for the instrumented shared-memory runtime."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import SeededRng
from repro.shared_memory.atomic_snapshot import AtomicSnapshot
from repro.shared_memory.runtime import SharedMemoryProgram, SharedMemoryRuntime
from repro.shared_memory.scheduler import CrashPlan, RandomScheduler, RoundRobinScheduler


def make_programs(memory):
    p0 = SharedMemoryProgram(0)
    p0.add(("update", 0, "a"), lambda: memory.update(0, "a"))
    p0.add(("snapshot",), lambda: memory.snapshot(0))
    p1 = SharedMemoryProgram(1)
    p1.add(("update", 1, "b"), lambda: memory.update(1, "b"))
    p1.add(("snapshot",), lambda: memory.snapshot(1))
    return [p0, p1]


class TestRuntime:
    def test_records_invocations_and_responses(self):
        memory = AtomicSnapshot(size=2)
        runtime = SharedMemoryRuntime(RoundRobinScheduler())
        outcome = runtime.run(make_programs(memory))
        assert len(outcome.history) == 4
        assert outcome.history.is_complete()

    def test_results_collected_per_process(self):
        memory = AtomicSnapshot(size=2)
        outcome = SharedMemoryRuntime(RoundRobinScheduler()).run(make_programs(memory))
        assert outcome.responses_of(0)[0] is None
        assert isinstance(outcome.responses_of(0)[1], tuple)

    def test_crashed_process_leaves_incomplete_history(self):
        memory = AtomicSnapshot(size=2)
        scheduler = RoundRobinScheduler(crash_plan=CrashPlan(crash_after={1: 1}))
        outcome = SharedMemoryRuntime(scheduler).run(make_programs(memory))
        assert not outcome.history.is_complete()
        assert 1 in outcome.scheduler_outcome.crashed

    def test_program_order_preserved_per_process(self):
        memory = AtomicSnapshot(size=2)
        outcome = SharedMemoryRuntime(RandomScheduler(SeededRng(3))).run(make_programs(memory))
        for process in (0, 1):
            operations = outcome.history.projection(process)
            assert [op.operation[0] for op in operations] == ["update", "snapshot"]

    def test_duplicate_process_rejected(self):
        memory = AtomicSnapshot(size=2)
        programs = make_programs(memory)
        programs[1] = SharedMemoryProgram(0)
        with pytest.raises(ConfigurationError):
            SharedMemoryRuntime(RoundRobinScheduler()).run(programs)

    def test_empty_program_list_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedMemoryRuntime(RoundRobinScheduler()).run([])
