"""Integration tests crossing module boundaries.

These tie the layers together: workloads drive both message-passing systems,
the Definition 1 checker validates the consensusless runs, and the headline
comparison (experiment E5/E6) is checked for its qualitative shape — the
consensusless system commits the same workload with lower latency and no
worse throughput.
"""

import pytest

from repro.bft.consensus_transfer import ConsensusTransferSystem
from repro.bft.pbft import PbftConfig
from repro.eval.experiments import ExperimentConfig, compare_systems, double_spend_experiment
from repro.mp.consensusless_transfer import account_of
from repro.mp.system import ConsensuslessSystem
from repro.spec.byzantine_spec import ByzantineAssetTransferChecker
from repro.workloads.generators import WorkloadConfig, closed_loop_workload, zipf_workload


class TestWorkloadsAgainstBothSystems:
    @pytest.mark.parametrize("generator", [closed_loop_workload, zipf_workload])
    def test_same_workload_same_final_balances(self, generator, fast_network):
        """Both systems, fed the same workload, converge to the same ledger."""
        n = 5
        submissions = generator(n, WorkloadConfig(transfers_per_process=3, seed=13))

        consensusless = ConsensuslessSystem(
            process_count=n, initial_balance=100, network_config=fast_network, seed=1
        )
        consensusless.schedule_submissions(submissions)
        result_cl = consensusless.run()

        consensus = ConsensusTransferSystem(
            process_count=n, initial_balance=100, network_config=fast_network,
            pbft_config=PbftConfig(batch_size=4), seed=1,
        )
        consensus.schedule_submissions(submissions)
        result_bft = consensus.run()

        # Every transfer is affordable in this workload, so both systems
        # commit all of them and agree on the resulting balances.
        assert result_cl.committed_count == len(submissions)
        assert result_bft.committed_count == len(submissions)
        balances_cl = {
            account_of(p): consensusless.balances_at(0)[account_of(p)] for p in range(n)
        }
        balances_bft = {
            account: consensus.balances_at(0)[account] for account in balances_cl
        }
        assert balances_cl == balances_bft

    def test_consensusless_run_satisfies_definition_1(self, fast_network):
        n = 6
        submissions = closed_loop_workload(n, WorkloadConfig(transfers_per_process=3, seed=21))
        system = ConsensuslessSystem(
            process_count=n, initial_balance=100, network_config=fast_network, seed=2
        )
        system.schedule_submissions(submissions)
        system.run()
        report = ByzantineAssetTransferChecker(system.initial_balances()).check(
            system.observations()
        )
        assert report.ok, report.violations


class TestHeadlineComparison:
    def test_consensusless_wins_on_latency_and_throughput(self, fast_network):
        """The qualitative E5/E6 shape at a small, test-friendly size."""
        row = compare_systems(8, ExperimentConfig(transfers_per_process=4, network=fast_network))
        assert row.consensusless.committed == row.consensus_based.committed == 32
        assert row.latency_ratio > 1.0
        assert row.throughput_ratio > 1.0

    def test_double_spend_attack_is_neutralised_end_to_end(self, fast_network):
        outcome = double_spend_experiment(
            process_count=7,
            config=ExperimentConfig(transfers_per_process=2, network=fast_network),
        )
        assert not outcome.conflicting_validated_anywhere
        assert outcome.definition_1_report.ok
        assert outcome.supply_conserved
        assert outcome.committed_honest_transfers > 0
