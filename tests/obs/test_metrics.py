"""Unit tests for the metrics registry: instruments, snapshots, merging.

The registry is the telemetry layer's data plane — every recorded number
travels as a snapshot dict through pickles and merges before a human sees
it, so the snapshot/merge algebra (counters add, histogram masses add,
gauges add as sampled per-source levels) is pinned here instrument by
instrument.
"""

import pytest

from repro.obs import MetricsRegistry, merge_snapshots, top_counters
from repro.obs.metrics import Counter, Gauge, Histogram


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_tracks_count_total_min_max_mean(self):
        histogram = Histogram()
        for value in (2.0, 0.5, 1.0):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.total == 3.5
        assert histogram.min == 0.5
        assert histogram.max == 2.0
        assert histogram.mean == pytest.approx(3.5 / 3)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_histogram_single_negative_value_sets_both_bounds(self):
        histogram = Histogram()
        histogram.record(-1.0)
        assert histogram.min == -1.0
        assert histogram.max == -1.0


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_recording_helpers(self):
        registry = MetricsRegistry()
        registry.inc("events", 3)
        registry.set_gauge("depth", 7)
        registry.observe("latency", 0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"events": 3}
        assert snapshot["gauges"] == {"depth": 7}
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert snapshot["histograms"]["latency"]["total"] == 0.25

    def test_snapshot_is_sorted_and_json_plain(self):
        import json

        registry = MetricsRegistry()
        registry.inc("z")
        registry.inc("a")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        json.dumps(snapshot)  # nothing non-serialisable sneaks in

    def test_merge_adds_counters_and_histogram_masses(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("n", 2)
        right.inc("n", 3)
        left.observe("h", 1.0)
        right.observe("h", 3.0)
        right.observe("h", 0.5)
        left.merge_snapshot(right.snapshot())
        snapshot = left.snapshot()
        assert snapshot["counters"]["n"] == 5
        series = snapshot["histograms"]["h"]
        assert series["count"] == 3
        assert series["total"] == 4.5
        assert series["min"] == 0.5
        assert series["max"] == 3.0

    def test_merge_adds_gauges_as_per_source_levels(self):
        """Each source's gauge is its own sampled level; the merged value is
        the cluster total (e.g. per-shard resident records summing up)."""
        driver, shard = MetricsRegistry(), MetricsRegistry()
        driver.set_gauge("resident", 4)
        shard.set_gauge("resident", 6)
        driver.merge_snapshot(shard.snapshot())
        assert driver.snapshot()["gauges"]["resident"] == 10

    def test_merge_none_and_empty_are_no_ops(self):
        registry = MetricsRegistry()
        registry.inc("n")
        registry.merge_snapshot(None)
        registry.merge_snapshot({})
        registry.merge_snapshot(MetricsRegistry().snapshot())
        assert registry.snapshot()["counters"] == {"n": 1}

    def test_merge_empty_histogram_series_does_not_create_bounds(self):
        registry = MetricsRegistry()
        other = MetricsRegistry()
        other.histogram("h")  # created but never recorded
        registry.merge_snapshot(other.snapshot())
        assert registry.snapshot()["histograms"]["h"]["count"] == 0


class TestModuleHelpers:
    def test_merge_snapshots_folds_many_including_none(self):
        registries = []
        for value in (1, 2, 4):
            registry = MetricsRegistry()
            registry.inc("n", value)
            registries.append(registry.snapshot())
        merged = merge_snapshots([None] + registries)
        assert merged["counters"]["n"] == 7

    def test_merge_snapshots_of_nothing_is_an_empty_snapshot(self):
        merged = merge_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_top_counters_ranks_by_value_then_name(self):
        registry = MetricsRegistry()
        registry.inc("b", 5)
        registry.inc("a", 5)
        registry.inc("c", 9)
        assert top_counters(registry.snapshot(), limit=2) == [("c", 9), ("a", 5)]

    def test_top_counters_of_empty_snapshot(self):
        assert top_counters({"counters": {}}) == []
        assert top_counters({}) == []
