"""Unit tests for the cProfile plumbing: raw dicts across pipes, merged
driver-side.

Worker profilers cannot ship ``pstats.Stats`` over a pipe (it holds stream
handles), so the contract under test is: ``profile_stats_dict`` produces a
plain picklable dict, ``merge_profile_stats`` folds many such dicts into one
``pstats.Stats``, and ``profile_summary`` flattens it for reports.
"""

import cProfile
import pickle
import pstats

from repro.obs import merge_profile_stats, profile_stats_dict, profile_summary


def _busy(n: int = 50) -> int:
    return sum(i * i for i in range(n))


def _profiled_dict() -> dict:
    profiler = cProfile.Profile()
    profiler.enable()
    _busy()
    profiler.disable()
    return profile_stats_dict(profiler)


class TestStatsDict:
    def test_dict_is_picklable(self):
        raw = _profiled_dict()
        assert pickle.loads(pickle.dumps(raw)) == raw

    def test_dict_names_the_profiled_function(self):
        raw = _profiled_dict()
        assert any(name == "_busy" for (_, _, name) in raw)


class TestMerge:
    def test_empty_and_falsy_inputs_merge_to_none(self):
        assert merge_profile_stats([]) is None
        assert merge_profile_stats([{}, {}]) is None

    def test_single_dict_becomes_stats(self):
        merged = merge_profile_stats([_profiled_dict()])
        assert isinstance(merged, pstats.Stats)

    def test_merging_two_runs_adds_call_counts(self):
        first, second = _profiled_dict(), _profiled_dict()

        def busy_calls(stats: pstats.Stats) -> int:
            return sum(
                entry[0]
                for (_, _, name), entry in stats.stats.items()
                if name == "_busy"
            )

        merged = merge_profile_stats([first, second])
        assert busy_calls(merged) == busy_calls(
            merge_profile_stats([first])
        ) + busy_calls(merge_profile_stats([second]))


class TestSummary:
    def test_none_summarises_to_empty(self):
        assert profile_summary(None) == []

    def test_rows_are_cumulative_sorted_and_bounded(self):
        merged = merge_profile_stats([_profiled_dict()])
        rows = profile_summary(merged, top=3)
        assert 0 < len(rows) <= 3
        cumulative = [row[2] for row in rows]
        assert cumulative == sorted(cumulative, reverse=True)
        where, calls, _ = rows[0]
        assert ":" in where and calls >= 1

    def test_summary_names_are_file_line_function(self):
        merged = merge_profile_stats([_profiled_dict()])
        assert any("_busy" in where for where, _, _ in profile_summary(merged, top=20))
