"""The telemetry invariant, stated as a regression suite.

The observability layer's one hard promise: **telemetry never perturbs
results**.  For every execution backend — the classic shared clock and the
serial/thread/process epoch backends — a run fingerprints identically with
telemetry off, metrics-only and full tracing; profiled and *migrated* runs
included.  Everything else here pins the supporting surface: the telemetry
section's shape and its exclusion from the fingerprint, trace export, the
merged worker profiles, and the knob normalisation.
"""

import pytest

from repro.cluster import ClusterSystem, MigrationPlan
from repro.common.errors import ConfigurationError
from repro.obs import TELEMETRY_MODES, normalize_telemetry, validate_trace_file
from repro.workloads.cluster_driver import ClusterWorkloadConfig, cluster_open_loop_workload

BACKENDS = (None, "serial", "thread", "process")


def _run(
    fast_network,
    backend,
    telemetry,
    profile=False,
    migration=None,
    max_workers=None,
    seed=3,
):
    system = ClusterSystem(
        shard_count=2,
        replicas_per_shard=4,
        initial_balance=500,
        network_config=fast_network,
        backend=backend,
        max_workers=max_workers,
        migration=migration,
        telemetry=telemetry,
        profile=profile,
        seed=seed,
    )
    workload = cluster_open_loop_workload(
        ClusterWorkloadConfig(
            user_count=40,
            aggregate_rate=1_500.0,
            duration=0.015,
            cross_shard_fraction=0.5,
            router=system.router,
            seed=seed,
        )
    )
    system.schedule_submissions(workload)
    result = system.run()
    return system, result


class TestFingerprintInvariance:
    """The headline guarantee: one fingerprint per backend, every mode."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fingerprint_identical_across_telemetry_modes(self, fast_network, backend):
        fingerprints = {}
        payloads = {}
        for mode in TELEMETRY_MODES:
            system, result = _run(fast_network, backend, mode)
            try:
                fingerprints[mode] = result.fingerprint()
                payloads[mode] = result.comparable_payload()
            finally:
                system.close()
        # Field-level equality first, so a regression names the field.
        assert payloads["off"] == payloads["metrics"]
        assert payloads["off"] == payloads["full"]
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_profiled_traced_migrated_run_matches_untelemetered(self, fast_network):
        """The worst case at once: process pool, live migration mid-run,
        full tracing and per-worker cProfile — still the same fingerprint
        as the bare telemetry-off run."""
        system, result = _run(fast_network, "process", "off", max_workers=2)
        try:
            baseline = result.fingerprint()
        finally:
            system.close()
        system, result = _run(
            fast_network,
            "process",
            "full",
            profile=True,
            migration=MigrationPlan([(0.01, 0, 1)]),
            max_workers=2,
        )
        try:
            assert result.migration_stream, "the migration must actually execute"
            assert result.fingerprint() == baseline
            stats = system.profile_stats()
            assert stats is not None and stats.stats
        finally:
            system.close()


class TestTelemetrySection:
    def test_off_mode_captures_nothing(self, fast_network):
        system, result = _run(fast_network, "serial", "off")
        try:
            assert result.telemetry is None
            assert result.trace is None
            assert result.fingerprint_payload()["telemetry"] is None
        finally:
            system.close()

    def test_metrics_mode_builds_the_section_without_spans(self, fast_network):
        system, result = _run(fast_network, "serial", "metrics")
        try:
            telemetry = result.telemetry
            assert telemetry["mode"] == "metrics"
            assert set(telemetry["per_shard"]) == {"0", "1"}
            assert "spans" not in telemetry
            assert result.trace is None
            # The merged totals fold driver and shard registries: signature
            # work and simulator events must both be visible.
            totals = telemetry["totals"]["counters"]
            assert totals["sig.verify"] > 0
            assert totals["sim.events"] > 0
        finally:
            system.close()

    def test_section_is_in_the_payload_but_not_the_hash(self, fast_network):
        system, result = _run(fast_network, "serial", "metrics")
        try:
            assert result.fingerprint_payload()["telemetry"] is result.telemetry
            before = result.fingerprint()
            result.telemetry = {"tampered": True}
            assert result.fingerprint() == before
            assert "telemetry" not in result.comparable_payload()
        finally:
            system.close()

    @pytest.mark.parametrize("backend", (None, "serial"))
    def test_phase_breakdown_accounts_for_the_run(self, fast_network, backend):
        """The phase histograms must explain >=90% of phase.total — the
        coverage bound the benchmarks also enforce."""
        system, result = _run(fast_network, backend, "metrics")
        try:
            histograms = result.telemetry["driver"]["histograms"]
            total = histograms["phase.total"]["total"]
            explained = sum(
                series["total"]
                for name, series in histograms.items()
                if name.startswith("phase.") and name != "phase.total"
            )
            assert total > 0
            assert explained / total >= 0.9
        finally:
            system.close()


class TestTraceExport:
    def test_full_mode_exports_a_valid_chrome_trace(self, fast_network, tmp_path):
        system, result = _run(fast_network, "process", "full", max_workers=2)
        try:
            assert result.telemetry["spans"]
            path = tmp_path / "trace.json"
            count = result.export_trace(str(path))
            assert count == len(result.trace) > 0
            assert validate_trace_file(str(path)) == count
            names = {event["name"] for event in result.trace}
            assert "phase.advance" in names
            assert "pipe.send" in names  # the process pool's pipe legs traced
        finally:
            system.close()

    def test_export_without_a_trace_refuses(self, fast_network, tmp_path):
        system, result = _run(fast_network, "serial", "metrics")
        try:
            with pytest.raises(ConfigurationError):
                result.export_trace(str(tmp_path / "no.json"))
        finally:
            system.close()


class TestKnobNormalisation:
    def test_mode_names_and_ergonomic_aliases(self):
        assert normalize_telemetry(None) == "metrics"
        assert normalize_telemetry(False) == "off"
        assert normalize_telemetry(True) == "full"
        for mode in TELEMETRY_MODES:
            assert normalize_telemetry(mode) == mode

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_telemetry("verbose")
        with pytest.raises(ConfigurationError):
            ClusterSystem(shard_count=1, telemetry="verbose")
