"""Unit tests for the span tracer and the Chrome trace_event exporter.

The exported file has a dual contract — a valid Trace Event Format JSON
array (what chrome://tracing and Perfetto load) *and* one event object per
line (the greppable JSONL-ish reading ``make trace`` validates) — so both
readings, plus the validator's rejections, are pinned here.
"""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import (
    TRACE_EVENT_REQUIRED_KEYS,
    Tracer,
    validate_trace_file,
    write_trace_events,
)


class TestSpans:
    def test_span_times_the_block_and_records_on_exit(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.name == "work"
        assert span.wall_dur >= 0.0

    def test_span_is_annotatable_inside_the_block(self):
        tracer = Tracer()
        with tracer.span("advance", sim_start=0.25, shard=3) as span:
            span.sim_end = 0.5
        span = tracer.spans[0]
        assert span.sim_start == 0.25
        assert span.sim_end == 0.5
        assert span.args == {"shard": 3}

    def test_span_records_even_when_the_block_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("phase failed")
        assert [span.name for span in tracer.spans] == ["boom"]

    def test_aggregate_totals_per_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("a"):
                pass
        with tracer.span("b"):
            pass
        totals = tracer.aggregate()
        assert totals["a"]["count"] == 3
        assert totals["b"]["count"] == 1
        assert totals["a"]["wall_s"] >= 0.0


class TestTraceEvents:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("phase.advance", sim_start=0.0, tid=0) as span:
            span.sim_end = 0.005
        with tracer.span("shard.advance", cat="shard", tid=2):
            pass
        return tracer

    def test_events_carry_metadata_then_sorted_complete_events(self):
        events = self._traced().trace_events()
        metadata = [event for event in events if event["ph"] == "M"]
        complete = [event for event in events if event["ph"] == "X"]
        assert {event["name"] for event in metadata} == {"process_name", "thread_name"}
        names = {event["args"]["name"] for event in metadata}
        assert "cluster-driver" in names and "scheduler" in names and "lane-2" in names
        assert [event["ts"] for event in complete] == sorted(
            event["ts"] for event in complete
        )
        for event in complete:
            for key in TRACE_EVENT_REQUIRED_KEYS:
                assert key in event
            assert "dur" in event

    def test_sim_times_ride_in_args(self):
        events = self._traced().trace_events()
        advance = next(e for e in events if e["name"] == "phase.advance")
        assert advance["args"]["sim_start"] == 0.0
        assert advance["args"]["sim_end"] == 0.005

    def test_export_roundtrips_through_the_validator(self, tmp_path):
        path = tmp_path / "trace.json"
        count = self._traced().export(str(path))
        assert validate_trace_file(str(path)) == count

    def test_file_is_one_event_per_line_and_loads_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        self._traced().export(str(path))
        text = path.read_text()
        events = json.loads(text)
        lines = [line for line in text.splitlines() if line.strip()]
        assert lines[0] == "[" and lines[-1] == "]"
        assert len(lines) - 2 == len(events)
        for line in lines[1:-1]:
            json.loads(line.rstrip(","))


class TestValidatorRejections:
    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            validate_trace_file(str(path))

    def test_rejects_empty_array(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(ConfigurationError, match="non-empty"):
            validate_trace_file(str(path))

    def test_rejects_missing_required_key(self, tmp_path):
        path = tmp_path / "missing.json"
        write_trace_events(str(path), [{"name": "x", "ph": "X", "ts": 0, "pid": 0}])
        with pytest.raises(ConfigurationError, match="missing 'tid'"):
            validate_trace_file(str(path))

    def test_rejects_unknown_phase(self, tmp_path):
        path = tmp_path / "phase.json"
        write_trace_events(
            str(path), [{"name": "x", "ph": "Z", "ts": 0, "pid": 0, "tid": 0}]
        )
        with pytest.raises(ConfigurationError, match="unknown phase"):
            validate_trace_file(str(path))

    def test_rejects_complete_event_without_duration(self, tmp_path):
        path = tmp_path / "nodur.json"
        write_trace_events(
            str(path), [{"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}]
        )
        with pytest.raises(ConfigurationError, match="no dur"):
            validate_trace_file(str(path))

    def test_rejects_compact_single_line_array(self, tmp_path):
        """A semantically fine but single-line file breaks the one-event-per-
        line contract the validator enforces alongside the JSON reading."""
        path = tmp_path / "compact.json"
        path.write_text(
            json.dumps([{"name": "x", "ph": "M", "ts": 0, "pid": 0, "tid": 0}])
        )
        with pytest.raises(ConfigurationError):
            validate_trace_file(str(path))
