"""Golden-output tests for the cluster-facing report tables.

The tables are part of the repository's human interface — EXPERIMENTS.md
regeneration, the examples and the benchmark logs all print them — so their
exact rendering is pinned character-for-character against synthetic rows
with hand-checkable numbers.  A formatting change that shifts a column or a
unit must show up here as a diff a reviewer reads, not as silent drift.
Empty inputs are part of the contract too: every table degrades to its
header pair, never to an exception.
"""

import textwrap

from repro.cluster.result import ClusterCheckReport, SupplyAudit
from repro.eval.experiments import (
    BackendComparisonRow,
    ClusterScalingRow,
    TelemetryRow,
    telemetry_breakdown,
    telemetry_phase_coverage,
    telemetry_top_counters,
)
from repro.eval.metrics import LatencyStats, RunSummary
from repro.eval.reporting import (
    format_backend_table,
    format_cluster_table,
    format_telemetry_table,
)


def _golden(text: str) -> str:
    return textwrap.dedent(text).strip("\n")


def _scaling_row() -> ClusterScalingRow:
    summary = RunSummary(
        system="cluster[s=2,b=4]",
        process_count=8,
        committed=120,
        rejected=0,
        duration=0.1,
        throughput=1200.0,
        latency=LatencyStats(
            average=0.0042, median=0.004, p95=0.008, p99=0.009, minimum=0.001, maximum=0.01
        ),
        messages_sent=4800,
        messages_per_commit=40.0,
    )
    # A quiescent, conserved ledger: local carries the whole supply, the 60
    # units that crossed shards were minted and fully retired.
    audit = SupplyAudit(
        initial_supply=4000, local=4000, outbound=0, minted=60, relay_delivered=60, retired=60
    )
    return ClusterScalingRow(
        shard_count=2,
        batch_size=4,
        summary=summary,
        check=ClusterCheckReport(conservation=audit),
        broadcast_instances=30,
        payload_items=120,
        load_imbalance=1.12,
        cross_shard_submissions=45,
        settled_amount=60,
        in_flight_amount=0,
        settlement_messages=90,
        resident_settlement_records=0,
        retired_records=12,
        retired_amount=60,
    )


class TestClusterTableGolden:
    def test_single_row_renders_exactly(self):
        expected = _golden(
            """
            shards  batch  tx/s  avg latency ms  messages/commit  tx/broadcast  imbalance  x-shard  settled  resident  retired  def-1  conserved
            ------  -----  ----  --------------  ---------------  ------------  ---------  -------  -------  --------  -------  -----  ---------
            2       4      1200  4.20            40.0             4.00          1.12       45       60       0         12       OK     OK
            """
        )
        assert format_cluster_table([_scaling_row()]) == expected

    def test_no_rows_renders_the_header_pair(self):
        table = format_cluster_table([])
        lines = table.splitlines()
        assert len(lines) == 2
        assert lines[0].split() == [
            "shards", "batch", "tx/s", "avg", "latency", "ms", "messages/commit",
            "tx/broadcast", "imbalance", "x-shard", "settled", "resident",
            "retired", "def-1", "conserved",
        ]
        assert set(lines[1]) <= {"-", " "}


class TestBackendTableGolden:
    def test_two_backends_render_exactly(self):
        row = _scaling_row()
        rows = [
            BackendComparisonRow(
                backend="serial", wall_clock_s=2.0, fingerprint="deadbeefcafe0123", row=row
            ),
            BackendComparisonRow(
                backend="process", wall_clock_s=0.5, fingerprint="deadbeefcafe0123", row=row
            ),
        ]
        expected = _golden(
            """
            backend  wall clock s  speedup  tx/s (sim)  def-1  fingerprint
            -------  ------------  -------  ----------  -----  ------------
            serial   2.00          1.00x    1200        OK     deadbeefcafe
            process  0.50          4.00x    1200        OK     deadbeefcafe
            """
        )
        assert format_backend_table(rows) == expected

    def test_no_rows_renders_the_header_pair(self):
        assert format_backend_table([]) == _golden(
            """
            backend  wall clock s  speedup  tx/s (sim)  def-1  fingerprint
            -------  ------------  -------  ----------  -----  -----------
            """
        )


class TestTelemetryTableGolden:
    def _rows(self):
        return [
            TelemetryRow(
                phase="phase.advance", count=8, total_s=0.0125, mean_s=0.0015625, share=0.625
            ),
            TelemetryRow(
                phase="phase.exchange", count=8, total_s=0.006, mean_s=0.00075, share=0.3
            ),
        ]

    def test_rows_render_exactly(self):
        expected = _golden(
            """
            phase           count  total s  mean ms  share
            --------------  -----  -------  -------  -----
            phase.advance   8      0.013    1.562    62.5%
            phase.exchange  8      0.006    0.750    30.0%
            """
        )
        assert format_telemetry_table(self._rows()) == expected

    def test_no_rows_renders_the_header_pair(self):
        assert format_telemetry_table([]) == _golden(
            """
            phase  count  total s  mean ms  share
            -----  -----  -------  -------  -----
            """
        )


class TestBreakdownHelpers:
    """The table's upstream: telemetry section -> rows, pure functions."""

    def _telemetry(self):
        return {
            "mode": "metrics",
            "driver": {
                "histograms": {
                    "phase.total": {"count": 1, "total": 0.02, "min": 0.02, "max": 0.02, "mean": 0.02},
                    "phase.advance": {"count": 8, "total": 0.0125, "min": 0.001, "max": 0.002, "mean": 0.0015625},
                    "phase.exchange": {"count": 8, "total": 0.006, "min": 0.0005, "max": 0.001, "mean": 0.00075},
                    "barrier.queue_depth": {"count": 8, "total": 12, "min": 0, "max": 3, "mean": 1.5},
                },
            },
            "totals": {"counters": {"sim.events": 900, "sig.verify": 120, "sig.sign": 40}},
        }

    def test_breakdown_excludes_total_and_non_phase_series(self):
        rows = telemetry_breakdown(self._telemetry())
        assert [row.phase for row in rows] == ["phase.advance", "phase.exchange"]
        assert rows[0].share == 0.625
        assert rows[1].share == 0.3

    def test_coverage_sums_the_shares(self):
        assert telemetry_phase_coverage(self._telemetry()) == 0.925

    def test_top_counters_reads_the_merged_totals(self):
        assert telemetry_top_counters(self._telemetry(), limit=2) == [
            ("sim.events", 900),
            ("sig.verify", 120),
        ]

    def test_everything_degrades_on_none(self):
        assert telemetry_breakdown(None) == []
        assert telemetry_phase_coverage(None) == 0.0
        assert telemetry_top_counters(None) == []
        assert format_telemetry_table(telemetry_breakdown(None)).count("\n") == 1

    def test_zero_total_yields_zero_shares_not_a_crash(self):
        telemetry = {
            "driver": {
                "histograms": {
                    "phase.total": {"count": 0, "total": 0.0},
                    "phase.advance": {"count": 1, "total": 0.001, "mean": 0.001},
                }
            }
        }
        rows = telemetry_breakdown(telemetry)
        assert rows[0].share == 0.0
