"""Tests for the metrics layer, the experiment harness and the reporting."""

import pytest

from repro.eval.experiments import (
    ClusterExperimentConfig,
    ExperimentConfig,
    backend_comparison_experiment,
    batching_ablation,
    broadcast_ablation,
    compare_systems,
    epoch_policy_experiment,
    latency_experiment,
    message_complexity_experiment,
    run_cluster,
    settlement_soak_experiment,
)
from repro.eval.metrics import LatencyStats, summarize_result
from repro.eval.reporting import (
    format_ablation_table,
    format_backend_table,
    format_cluster_table,
    format_comparison_table,
    format_epoch_policy_table,
    format_latency_table,
    format_run_summary,
    format_soak_table,
)
from repro.mp.consensusless_transfer import TransferRecord
from repro.mp.system import SystemResult
from repro.common.types import Transfer


def small_config(fast_network, per_process=2):
    return ExperimentConfig(transfers_per_process=per_process, network=fast_network, seed=5)


class TestLatencyStats:
    def test_empty_values(self):
        stats = LatencyStats.from_values([])
        assert stats.average == 0 and stats.p99 == 0

    def test_percentiles_ordered(self):
        stats = LatencyStats.from_values([i / 100 for i in range(1, 101)])
        assert stats.minimum <= stats.median <= stats.p95 <= stats.p99 <= stats.maximum
        assert stats.average == pytest.approx(0.505)

    def test_millisecond_view(self):
        stats = LatencyStats.from_values([0.002])
        assert stats.as_milliseconds()["avg_ms"] == pytest.approx(2.0)


class TestSummaries:
    def _result(self):
        result = SystemResult()
        transfer = Transfer("0", "1", 1, issuer=0, sequence=1)
        result.committed = [
            TransferRecord(transfer=transfer, submitted_at=0.0, completed_at=0.01, success=True),
            TransferRecord(transfer=transfer, submitted_at=0.0, completed_at=0.02, success=True),
        ]
        result.duration = 0.1
        result.messages_sent = 50
        return result

    def test_summarize_result(self):
        summary = summarize_result("consensusless", 4, self._result())
        assert summary.committed == 2
        assert summary.throughput == pytest.approx(20.0)
        assert summary.messages_per_commit == pytest.approx(25.0)

    def test_format_run_summary_contains_key_numbers(self):
        text = format_run_summary(summarize_result("consensusless", 4, self._result()))
        assert "throughput" in text and "20.0 tx/s" in text


class TestExperimentHarness:
    def test_compare_systems_produces_both_summaries(self, fast_network):
        row = compare_systems(5, small_config(fast_network))
        assert row.consensusless.committed == 10
        assert row.consensus_based.committed == 10
        assert row.throughput_ratio > 0
        assert row.latency_ratio > 0
        table = format_comparison_table([row])
        assert "tput ratio" in table and str(row.process_count) in table

    def test_latency_experiment_rows(self, fast_network):
        rows = latency_experiment(process_counts=(4,), transfers=3, config=small_config(fast_network))
        assert len(rows) == 1
        assert rows[0].consensusless_latency > 0
        assert rows[0].consensus_latency > 0
        assert "ratio" in format_latency_table(rows)

    def test_message_complexity_rows(self, fast_network):
        rows = message_complexity_experiment(process_counts=(4,), config=small_config(fast_network))
        assert rows[0]["consensusless_msgs_per_tx"] > rows[0]["consensus_msgs_per_tx"] * 0

    def test_broadcast_ablation(self, fast_network):
        rows = broadcast_ablation(process_count=5, config=small_config(fast_network))
        labels = {row.label for row in rows}
        assert labels == {"broadcast=bracha", "broadcast=echo"}
        bracha = next(r for r in rows if r.label == "broadcast=bracha")
        echo = next(r for r in rows if r.label == "broadcast=echo")
        # The echo broadcast needs strictly fewer messages per transfer.
        assert echo.summary.messages_per_commit < bracha.summary.messages_per_commit
        assert "configuration" in format_ablation_table(rows)

    def test_batching_ablation(self, fast_network):
        rows = batching_ablation(process_count=4, batch_sizes=(1, 4), config=small_config(fast_network))
        assert [row.label for row in rows] == ["batch=1", "batch=4"]
        assert all(row.summary.committed == 8 for row in rows)

    def test_backend_comparison_experiment(self, fast_network):
        config = ClusterExperimentConfig(
            user_count=200,
            aggregate_rate=2_000.0,
            duration=0.02,
            cross_shard_fraction=0.5,
            network=fast_network,
            seed=7,
        )
        rows = backend_comparison_experiment(
            shard_count=2, batch_size=4, backends=("serial", "process"), config=config
        )
        assert [row.backend for row in rows] == ["serial", "process"]
        # One workload, two engines: identical audited results, measured time.
        assert len({row.fingerprint for row in rows}) == 1
        for row in rows:
            assert row.wall_clock_s > 0
            assert row.row.check.ok
            assert row.row.conservation_ok
            assert row.throughput == rows[0].throughput
        table = format_backend_table(rows)
        assert "speedup" in table and "fingerprint" in table
        assert rows[0].fingerprint[:12] in table


class TestSettlementLifecycleExperiments:
    def _config(self, fast_network, duration=0.04):
        return ClusterExperimentConfig(
            user_count=300,
            aggregate_rate=3_000.0,
            duration=duration,
            cross_shard_fraction=0.5,
            network=fast_network,
            seed=7,
        )

    def test_cluster_rows_surface_compaction(self, fast_network):
        row, system = run_cluster(2, 4, self._config(fast_network))
        system.close()
        # Quiescence under the lifecycle: everything retired, nothing resident.
        assert row.retired_records > 0
        assert row.resident_settlement_records == 0
        assert row.retired_amount == row.settled_amount > 0
        table = format_cluster_table([row])
        assert "resident" in table and "retired" in table
        assert str(row.retired_records) in table

    def test_settlement_soak_reports_bounded_residency(self, fast_network):
        report = settlement_soak_experiment(
            shard_count=2,
            batch_size=4,
            checkpoints=4,
            config=self._config(fast_network, duration=0.06),
        )
        assert not report.violations, report.violations
        assert report.final_check_ok
        assert report.bounded
        assert report.fully_retired
        assert len(report.samples) == 5  # checkpoints + quiescence
        table = format_soak_table(report)
        assert "resident" in table and "retired" in table

    def test_epoch_policy_experiment_compares_the_trade(self, fast_network):
        from repro.cluster import AdaptiveEpochPolicy, FixedEpochPolicy

        rows = epoch_policy_experiment(
            [
                ("fixed", FixedEpochPolicy(0.005)),
                ("adaptive", AdaptiveEpochPolicy(initial_epoch=0.005)),
            ],
            config=self._config(fast_network),
        )
        assert [row.policy for row in rows] == ["fixed", "adaptive"]
        for row in rows:
            assert row.check_ok
            assert row.barriers > 0
            assert row.settlement_samples > 0
            assert row.avg_settlement_latency > 0
        # Same workload and protocol outcome; only the barrier grid differs.
        assert rows[0].committed == rows[1].committed
        assert rows[0].barriers != rows[1].barriers
        table = format_epoch_policy_table(rows)
        assert "barriers" in table and "avg settle ms" in table
