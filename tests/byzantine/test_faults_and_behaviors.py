"""Unit tests for the fault model and adversarial behaviours."""

import pytest

from repro.byzantine.behaviors import (
    CrashBehavior,
    DelayBehavior,
    DropBehavior,
    EquivocationPlan,
    HonestBehavior,
    ScriptedBehavior,
)
from repro.byzantine.faults import (
    FaultKind,
    FaultModel,
    byzantine_quorum,
    max_tolerated_faults,
)
from repro.common.errors import ConfigurationError
from repro.common.rng import SeededRng


class TestResilienceArithmetic:
    @pytest.mark.parametrize("n,f", [(1, 0), (3, 0), (4, 1), (7, 2), (10, 3), (100, 33)])
    def test_max_tolerated_faults(self, n, f):
        assert max_tolerated_faults(n) == f

    def test_quorums_intersect_in_a_correct_process(self):
        for n in range(4, 40):
            f = max_tolerated_faults(n)
            q = byzantine_quorum(n)
            assert 2 * q - n >= f + 1

    def test_nonpositive_n_rejected(self):
        with pytest.raises(ConfigurationError):
            max_tolerated_faults(0)


class TestFaultModel:
    def test_all_correct(self):
        model = FaultModel.all_correct(5)
        assert model.fault_count == 0
        assert model.correct == (0, 1, 2, 3, 4)

    def test_random_faults_respect_protection(self):
        model = FaultModel.with_random_faults(
            10, fault_count=3, kind=FaultKind.CRASH, rng=SeededRng(1), protect=(0, 1)
        )
        assert model.fault_count == 3
        assert not (model.faulty & {0, 1})
        assert model.within_resilience()

    def test_kind_of_and_predicates(self):
        model = FaultModel(total_processes=4, faults={2: FaultKind.DOUBLE_SPEND})
        assert model.is_faulty(2) and not model.is_correct(2)
        assert model.kind_of(2) is FaultKind.DOUBLE_SPEND
        assert model.kind_of(0) is None

    def test_out_of_range_fault_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultModel(total_processes=3, faults={7: FaultKind.CRASH})

    def test_too_many_random_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultModel.with_random_faults(3, 4, FaultKind.CRASH, SeededRng(1))


class TestBehaviors:
    def test_honest_is_identity(self):
        out = HonestBehavior().transform(0, 1, "m")
        assert len(out) == 1 and out[0].message == "m" and out[0].recipient == 1

    def test_crash_behavior_stops_after_limit(self):
        behavior = CrashBehavior(send_limit=2)
        sent = [behavior.transform(0, i, "m") for i in range(4)]
        assert [len(s) for s in sent] == [1, 1, 0, 0]

    def test_drop_behavior_statistics(self):
        behavior = DropBehavior(0.5, SeededRng(3))
        delivered = sum(len(behavior.transform(0, 1, "m")) for _ in range(400))
        assert 120 < delivered < 280

    def test_delay_behavior_adds_delay(self):
        out = DelayBehavior(0.25).transform(0, 1, "m")
        assert out[0].extra_delay == 0.25

    def test_scripted_behavior_substitutes_and_silences(self):
        behavior = ScriptedBehavior(substitutions={1: "fake"}, silent_towards={2})
        assert behavior.transform(0, 1, "real")[0].message == "fake"
        assert behavior.transform(0, 2, "real") == []
        assert behavior.transform(0, 3, "real")[0].message == "real"

    def test_equivocation_plan_split(self):
        plan = EquivocationPlan.split_evenly(range(7), exclude=(6,))
        assert set(plan.partition_a) | set(plan.partition_b) == set(range(6))
        assert not set(plan.partition_a) & set(plan.partition_b)
        assert plan.audience() == tuple(range(6))

    def test_equivocation_plan_recipients_lookup(self):
        plan = EquivocationPlan(partition_a=(1,), partition_b=(2,))
        assert plan.recipients_of("a") == (1,)
        assert plan.recipients_of("b") == (2,)
        with pytest.raises(ValueError):
            plan.recipients_of("c")
