#!/usr/bin/env python3
"""Cluster quickstart: consensusless payments at cluster scale.

The paper's Theorem 1 says single-owner asset transfer has consensus
number 1: transfers on different accounts commute, so the system shards by
account with no cross-shard coordination.  This example:

1. walks one cross-shard payment round trip — Alice (shard 0) pays Bob
   (shard 1), the settlement relay quorum-certifies and mints the credit,
   Bob *spends the received money* onwards and back across the boundary, and
   the acknowledgement leg then *retires* the outbound records: the resident
   settlement-record count is printed mid-flight and after compaction,
2. generates a heavy, Zipf-skewed, Poisson-arrival workload from 100 000
   simulated users,
3. replays it against 1, 2 and 4 shards (identical offered load), plain and
   batched (8 transfers per secure-broadcast instance),
4. audits every run with the per-shard Definition 1 checker plus the
   cluster-level conservation audit that nets settled credits across shard
   ledgers,
5. re-runs one sharded workload on the parallel execution backends —
   ``backend="serial"`` vs ``backend="process"`` — showing the wall-clock
   speedup real cores buy while the canonical result fingerprints stay
   bit-identical (shards never coordinate, so nothing forces them onto one
   event loop),
6. swaps the dense epoch barrier for *sparse dependency-driven* pacing
   (``barrier_mode="sparse"``): the scheduler derives which shard pairs
   actually have pending settlement traffic, shards with nothing pending
   skip the rendezvous and run ahead up to ``max_lag`` barriers, and the
   driver's settlement exchange overlaps early-dispatched workers —
   comparing wall clock and accumulated rendezvous stall against the dense
   run while the fingerprints stay bit-identical (pacing invariance),
7. *rebalances the cluster live*: a shifting hotspot skews the per-worker
   load, ``rebalance()`` migrates shards between workers mid-run (snapshot,
   detach, rehydrate — no agreement protocol, because shards never
   coordinate), and the final fingerprint still equals the static run's:
   results are placement-invariant,
8. repeats a migrated run with *incremental checkpoints* on: periodic
   delta-encoded baselines taken at protocol-quiescent epoch barriers let
   the same moves ship only what changed since the last checkpoint —
   O(delta) payload bytes and a truncated replay — with the fingerprint
   still equal to the checkpoint-free run's, and
9. turns the telemetry on full: the same run traced and metered, its phase
   breakdown and busiest counters printed, a Chrome ``trace_event`` file
   (``TRACE_quickstart.json``, loadable in chrome://tracing or Perfetto)
   written and validated — while the fingerprint still equals the
   untelemetered run's, because telemetry never perturbs results.

The per-core engine behind all of this was rewritten for speed
(verification caching, a calendar event queue, a compact worker-pipe
codec, then one-check quorum verification at certificate assembly,
slotted tuple-encoded broadcast envelopes, and a zero-copy barrier
fan-out): the 8-shard batch=8 serial benchmark run now takes **0.632s of
wall clock where it took 0.659s after the first rewrite pass and 1.052s
originally** — same seed, bit-identical fingerprint — and
``make bench-core`` re-measures each layer against the implementation it
replaced.

Run with:  python examples/cluster_quickstart.py
"""

import os
import time

from repro.cluster import ClusterSystem, MigrationPlan
from repro.eval.experiments import (
    ClusterExperimentConfig,
    run_cluster,
    telemetry_breakdown,
    telemetry_phase_coverage,
    telemetry_top_counters,
)
from repro.eval.reporting import format_cluster_table, format_telemetry_table
from repro.obs import validate_trace_file
from repro.network.node import NetworkConfig
from repro.workloads.cluster_driver import (
    ClusterSubmission,
    HotspotProfile,
    destination_histogram,
)


def cross_shard_round_trip() -> None:
    """One payment out, settled, spent onwards, and change sent back."""
    system = ClusterSystem(
        shard_count=2, replicas_per_shard=4, initial_balance=10, seed=3
    )
    router = system.router
    alice = next(u for u in range(100_000) if router.shard_of(u) == 0)
    bob = next(u for u in range(100_000) if router.shard_of(u) == 1)
    carol = next(
        u for u in range(100_000)
        if router.shard_of(u) == 1
        and router.local_account_of(u) != router.local_account_of(bob)
    )
    print("one cross-shard round trip (every account starts with 10 coins):")
    print(f"  t=0.001  Alice (shard 0) pays Bob (shard 1) 9 coins")
    print(f"  t=0.050  Bob pays Carol (shard 1) 15 coins  <- exceeds Bob's own 10:")
    print(f"           only spendable because the settlement relay minted Alice's 9")
    print(f"  t=0.090  Bob sends 3 coins back to Alice (shard 0)")
    system.schedule_submissions(
        [
            ClusterSubmission(time=0.001, source_user=alice, destination_user=bob, amount=9),
            ClusterSubmission(time=0.05, source_user=bob, destination_user=carol, amount=15),
            ClusterSubmission(time=0.09, source_user=bob, destination_user=alice, amount=3),
        ]
    )
    # Pause mid-flight: the payments have validated but the acknowledgement
    # leg has not finished retiring their outbound records yet.
    system.run(until=0.095)
    mid_resident = system.resident_settlement_records()
    mid_retired = system.retired_records()
    result = system.run()
    balance = lambda user: (
        system.shards[router.shard_of(user)].nodes[0].balance_of(router.local_account_of(user))
    )
    audit = system.supply_audit()
    report = system.check_definition1()
    print(f"  -> committed {result.committed_count}/3, "
          f"certificates delivered: {len(system.settlement_signature())}")
    print(f"  -> balances: Alice {balance(alice)}, Bob {balance(bob)}, Carol {balance(carol)}")
    print(f"  -> audit: local {audit.local} + in-flight {audit.in_flight} "
          f"= initial {audit.initial_supply}; Definition 1 "
          f"{'OK' if report.ok else 'VIOLATED'}, fully settled: {audit.fully_settled}")
    print(f"  -> compaction: resident outbound records {mid_resident} mid-flight "
          f"(retired {mid_retired}) -> {system.resident_settlement_records()} after the "
          f"acknowledgement quorums retired all {system.retired_records()} "
          f"(ledgers keep the in-flight window, not the history)")


def backend_speedup() -> None:
    """The same cluster run on one core vs. a process pool per shard."""
    config = ClusterExperimentConfig(
        user_count=50_000,
        aggregate_rate=16_000.0,
        duration=0.05,
        zipf_skew=1.0,
        network=NetworkConfig(seed=7),
        seed=7,
    )
    workload = config.workload()
    print(f"execution backends: {len(workload)} payments against 4 shards, "
          f"identical simulated work on every backend ({os.cpu_count()} CPUs here)")
    fingerprints = {}
    clocks = {}
    for backend in ("serial", "process"):
        system = ClusterSystem(
            shard_count=4, replicas_per_shard=4, batch_size=8,
            network_config=NetworkConfig(seed=7), backend=backend, seed=7,
        )
        system.schedule_submissions(workload)
        started = time.perf_counter()
        result = system.run()
        clocks[backend] = time.perf_counter() - started
        fingerprints[backend] = result.fingerprint()
        verdict = "OK" if system.check_definition1().ok else "VIOLATED"
        print(f"  backend={backend:7s} wall clock {clocks[backend]:6.2f}s, "
              f"{result.committed_count} committed, Definition 1 {verdict}, "
              f"fingerprint {fingerprints[backend][:12]}")
        system.close()
    same = fingerprints["serial"] == fingerprints["process"]
    print(f"  -> fingerprints identical: {same} "
          f"(parallelism may never change protocol behaviour)")
    print(f"  -> process-pool speedup: {clocks['serial'] / clocks['process']:.2f}x "
          f"(grows with real cores; equivalence holds regardless)")


def sparse_barriers() -> None:
    """Dense vs sparse barrier pacing: same results, less waiting.

    Under the classic dense grid every shard stops at every epoch barrier
    whether or not it has settlement traffic to exchange; sparse pacing lets
    the shards that owe nothing keep computing.  The rendezvous *stall* —
    the spread between the first and last shard reaching each barrier,
    recorded by the ``barrier_stall`` histogram — is what that removes
    (single-worker pools complete each rendezvous in one reply, so the
    dense histogram is legitimately empty there and the comparison comes
    alive with real cores).
    """
    config = ClusterExperimentConfig(
        user_count=20_000, aggregate_rate=12_000.0, duration=0.04,
        zipf_skew=1.0, cross_shard_fraction=0.25,
        network=NetworkConfig(seed=7), seed=7,
    )
    print(f"barrier pacing: 4 shards on the process pool, dense vs sparse "
          f"({os.cpu_count()} CPUs here)")
    runs = {}
    for mode in ("dense", "sparse"):
        system = ClusterSystem(
            shard_count=4, replicas_per_shard=4, batch_size=8,
            network_config=NetworkConfig(seed=7), backend="process",
            barrier_mode=mode, seed=7,
        )
        system.schedule_submissions(config.workload(system.router))
        started = time.perf_counter()
        result = system.run()
        wall = time.perf_counter() - started
        system.close()
        driver = (result.telemetry or {}).get("driver", {})
        stall = driver.get("histograms", {}).get("barrier_stall", {})
        counters = driver.get("counters", {})
        runs[mode] = (result.fingerprint(), wall, stall)
        print(f"  barrier_mode={mode:6s} wall clock {wall:6.2f}s, "
              f"{counters.get('scheduler.barriers', 0)} barriers, "
              f"{counters.get('barrier.skips', 0)} skipped rendezvous, "
              f"{counters.get('barrier.early_dispatch', 0)} early dispatches, "
              f"stall {stall.get('total', 0.0) * 1000:6.1f} ms "
              f"across {stall.get('count', 0)} samples")
    same = runs["dense"][0] == runs["sparse"][0]
    print(f"  -> fingerprints identical: {same} "
          f"(pacing invariance: sparse barriers change *when* shards wait,")
    print(f"     never what they compute; the barrier schedule itself rides in")
    print(f"     the fingerprint payload like the migration stream)")


def live_rebalance() -> None:
    """Migrate shards between workers mid-run; results stay bit-identical."""
    def build(migration):
        system = ClusterSystem(
            shard_count=4, replicas_per_shard=4, batch_size=8,
            network_config=NetworkConfig(seed=7), backend="serial",
            max_workers=2, migration=migration, seed=7,
        )
        config = ClusterExperimentConfig(
            user_count=2_000, aggregate_rate=6_000.0, duration=0.06,
            zipf_skew=1.0, cross_shard_fraction=0.4,
            hotspot=HotspotProfile(period=0.02, intensity=0.7, width=8),
            network=NetworkConfig(seed=7), seed=7,
        )
        system.schedule_submissions(config.workload(system.router))
        return system

    static = build(None)
    reference = static.run().fingerprint()
    static.close()

    live = build("manual")  # migration seam on, moves decided by us
    # The session inherits a one-worker placement (think: a cluster that
    # just scaled from one worker to two) — before the first run the plan
    # is still editable for free.
    live.rebalance(moves=[(shard, 0) for shard in range(4)])
    live.run(until=0.02)    # phase 1 of the hotspot: worker 0 does it all
    before = live.worker_loads()
    records = live.rebalance()
    after = live.worker_loads()
    result = live.run()
    same = result.fingerprint() == reference
    print("live rebalancing: 4 hotspot-skewed shards, all on worker 0 of 2")
    print(f"  per-worker load before rebalance(): {before}")
    for record in records:
        print(f"  moved shard {record.shard}: worker {record.source_worker} -> "
              f"{record.target_worker} ({record.snapshot_bytes} snapshot bytes, "
              f"{record.stall_s * 1000:.1f} ms stall)")
    print(f"  per-worker load after:               {after}")
    print(f"  -> fingerprint equals the static-assignment run: {same}")
    print(f"     (placement invariance: migration moves *where* shards compute,")
    print(f"      never what they compute; Definition 1 "
          f"{'OK' if live.check_definition1().ok else 'VIOLATED'})")
    live.close()


def checkpointed_migration() -> None:
    """The same moves shipped as O(delta) instead of O(history).

    Checkpoints are taken opportunistically at *protocol-quiescent* epoch
    barriers, so a bursty workload — two traffic bursts with an idle gap —
    is where they pay off: the barriers inside the gap refresh every
    shard's baseline, and the moves scheduled after a burst ship only the
    delta since that baseline and replay only the tail.
    """
    def bursts():
        subs = []
        for base in (0.0, 0.1):
            for i in range(60):
                source = (i * 5 + int(base * 10)) % 200
                destination = (source + 7 + i % 11) % 200
                subs.append(ClusterSubmission(
                    time=base + 0.0001 + 0.0004 * i, source_user=source,
                    destination_user=destination, amount=1 + i % 9,
                ))
        return subs

    def build(checkpoint_every):
        system = ClusterSystem(
            shard_count=4, replicas_per_shard=4, batch_size=8,
            network_config=NetworkConfig(seed=7), backend="process",
            max_workers=2, seed=7,
            migration=MigrationPlan([(0.05, 0, 1), (0.112, 1, 0)]),
            checkpoint_every=checkpoint_every,
        )
        system.schedule_submissions(bursts())
        return system

    runs = {}
    for label, cadence in (("from genesis", None), ("checkpointed", 2)):
        system = build(cadence)
        fingerprint = system.run().fingerprint()
        runs[label] = (fingerprint, list(system.scheduler.migration_log),
                       system.checkpoint_stats())
        system.close()

    print("checkpointed migration: the same two moves, process pool, 2 workers")
    for label, (fingerprint, records, stats) in runs.items():
        for record in records:
            payload = record.delta_bytes or record.snapshot_bytes
            print(f"  [{label:12s}] shard {record.shard}: worker "
                  f"{record.source_worker} -> {record.target_worker}, "
                  f"{payload:,} payload bytes vs {record.snapshot_bytes:,} "
                  f"full snapshot, {record.replayed_events} events replayed")
        if stats["taken"]:
            print(f"  [{label:12s}] checkpoint stream: {stats['taken']} taken, "
                  f"{stats['delta_bytes']:,} delta bytes vs "
                  f"{stats['full_bytes']:,} full")
    same = runs["from genesis"][0] == runs["checkpointed"][0]
    print(f"  -> fingerprints identical with checkpoints on: {same}")


def telemetry_tour() -> None:
    """The same run metered, traced and profiled-for-free: the telemetry
    layer records where the wall clock went without moving a single result
    bit (the fingerprint invariant, checked live below)."""
    def build(telemetry):
        system = ClusterSystem(
            shard_count=2, replicas_per_shard=4, batch_size=4,
            network_config=NetworkConfig(seed=7), backend="serial",
            telemetry=telemetry, seed=7,
        )
        config = ClusterExperimentConfig(
            user_count=2_000, aggregate_rate=4_000.0, duration=0.04,
            cross_shard_fraction=0.5, network=NetworkConfig(seed=7), seed=7,
        )
        system.schedule_submissions(config.workload(system.router))
        return system

    bare = build("off")
    reference = bare.run().fingerprint()
    bare.close()

    system = build("full")
    result = system.run()
    system.close()
    telemetry = result.telemetry
    coverage = telemetry_phase_coverage(telemetry)
    print("telemetry: the same run with metrics and span tracing on full")
    print(f"  -> fingerprint equals the telemetry-off run: "
          f"{result.fingerprint() == reference} (telemetry never perturbs results)")
    print()
    print(format_telemetry_table(telemetry_breakdown(telemetry)))
    print(f"  (phase breakdown explains {coverage:.1%} of the run's wall time)")
    print()
    print("  busiest counters (driver + all shards merged):")
    for name, value in telemetry_top_counters(telemetry, limit=5):
        print(f"    {name:24s} {value:>10,}")
    trace_path = "TRACE_quickstart.json"
    events = result.export_trace(trace_path)
    validate_trace_file(trace_path)
    print(f"  -> wrote {trace_path} ({events} trace events, schema-validated;")
    print(f"     load it in chrome://tracing or https://ui.perfetto.dev)")


def main() -> None:
    cross_shard_round_trip()
    print()
    backend_speedup()
    print()
    sparse_barriers()
    print()
    live_rebalance()
    print()
    checkpointed_migration()
    print()
    telemetry_tour()
    print()
    config = ClusterExperimentConfig(
        user_count=100_000,
        aggregate_rate=10_000.0,
        duration=0.05,
        zipf_skew=1.0,
        network=NetworkConfig(seed=7),
        seed=7,
    )
    workload = config.workload()
    print(f"workload: {len(workload)} payments from {config.user_count:,} users "
          f"(Poisson arrivals at {config.aggregate_rate:,.0f} tx/s, Zipf skew {config.zipf_skew})")
    top = destination_histogram(workload, top=3)
    print(f"hottest merchants (user id: payments received): {top}")
    print()

    rows = []
    for shards, batch in [(1, 1), (2, 1), (4, 1), (1, 8), (2, 8), (4, 8)]:
        row, system = run_cluster(shards, batch, config, workload=workload)
        rows.append(row)
        verdict = "OK" if row.check.ok else "VIOLATED: " + "; ".join(row.check.violations[:2])
        print(f"shards={shards} batch={batch}: "
              f"{row.summary.committed} committed at {row.summary.throughput:,.0f} tx/s, "
              f"{system.cross_shard_submissions} cross-shard, Definition 1 {verdict}")
    print()
    print(format_cluster_table(rows))
    print()
    print("Reading the table: throughput scales with shard count because shards")
    print("share no accounts and only exchange quorum-certified settlement")
    print("certificates; batching multiplies it again by amortising the")
    print("signature/quorum cost of each secure-broadcast instance over up to 8")
    print("transfers ('tx/broadcast').  'settled' is the cross-shard money minted")
    print("spendable at its destination shard; 'resident'/'retired' are the")
    print("settlement lifecycle's record counts (every outbound x{d}:a record is")
    print("retired once a 2f+1 destination acknowledgement quorum confirms its")
    print("mint — at quiescence 'resident' is 0 and the ledgers are compact);")
    print("'conserved' is the cross-ledger supply audit identity (local +")
    print("in-flight == initial supply; at quiescence every run above also")
    print("settles fully, in-flight == 0).")


if __name__ == "__main__":
    main()
