#!/usr/bin/env python3
"""Cluster quickstart: consensusless payments at cluster scale.

The paper's Theorem 1 says single-owner asset transfer has consensus
number 1: transfers on different accounts commute, so the system shards by
account with no cross-shard coordination.  This example:

1. generates a heavy, Zipf-skewed, Poisson-arrival workload from 100 000
   simulated users,
2. replays it against 1, 2 and 4 shards (identical offered load),
3. replays it batched (8 transfers per secure-broadcast instance), and
4. audits every run with the per-shard Definition 1 checker.

Run with:  python examples/cluster_quickstart.py
"""

from repro.eval.experiments import ClusterExperimentConfig, run_cluster
from repro.eval.reporting import format_cluster_table
from repro.network.node import NetworkConfig
from repro.workloads.cluster_driver import destination_histogram


def main() -> None:
    config = ClusterExperimentConfig(
        user_count=100_000,
        aggregate_rate=10_000.0,
        duration=0.05,
        zipf_skew=1.0,
        network=NetworkConfig(seed=7),
        seed=7,
    )
    workload = config.workload()
    print(f"workload: {len(workload)} payments from {config.user_count:,} users "
          f"(Poisson arrivals at {config.aggregate_rate:,.0f} tx/s, Zipf skew {config.zipf_skew})")
    top = destination_histogram(workload, top=3)
    print(f"hottest merchants (user id: payments received): {top}")
    print()

    rows = []
    for shards, batch in [(1, 1), (2, 1), (4, 1), (1, 8), (2, 8), (4, 8)]:
        row, system = run_cluster(shards, batch, config, workload=workload)
        rows.append(row)
        verdict = "OK" if row.check.ok else "VIOLATED: " + "; ".join(row.check.violations[:2])
        print(f"shards={shards} batch={batch}: "
              f"{row.summary.committed} committed at {row.summary.throughput:,.0f} tx/s, "
              f"{system.cross_shard_submissions} cross-shard, Definition 1 {verdict}")
    print()
    print(format_cluster_table(rows))
    print()
    print("Reading the table: throughput scales with shard count because shards")
    print("share no accounts and never exchange messages; batching multiplies it")
    print("again by amortising the signature/quorum cost of each secure-broadcast")
    print("instance over up to 8 transfers ('tx/broadcast').")


if __name__ == "__main__":
    main()
