#!/usr/bin/env python3
"""Experiments E5/E6/E8: consensusless protocol vs consensus-based baseline.

Regenerates the paper's quantitative claims (Section 5): the broadcast-based
protocol outperforms a consensus-based implementation by 1.5x-6x in
throughput and up to 2x in latency (low load), on identical workloads over
the same simulated network.

Usage:
    python examples/throughput_comparison.py             # quick sweep (N = 10, 20, 30)
    python examples/throughput_comparison.py --full      # paper-scale sweep (up to N = 100; slow)
"""

import argparse

from repro.eval.experiments import (
    ExperimentConfig,
    latency_experiment,
    message_complexity_experiment,
    throughput_scaling_experiment,
)
from repro.eval.reporting import format_comparison_table, format_latency_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the paper-scale sweep up to 100 processes (takes tens of minutes)")
    parser.add_argument("--transfers", type=int, default=None,
                        help="transfers per process (default: 5 quick, 3 full)")
    args = parser.parse_args()

    if args.full:
        process_counts = (10, 25, 50, 75, 100)
        transfers = args.transfers or 3
    else:
        process_counts = (10, 20, 30)
        transfers = args.transfers or 5
    config = ExperimentConfig(transfers_per_process=transfers)

    print("== E5: throughput under a closed-loop payment workload ==")
    rows = throughput_scaling_experiment(process_counts, config)
    print(format_comparison_table(rows))
    ratios = [row.throughput_ratio for row in rows]
    print(f"\nthroughput advantage: {min(ratios):.2f}x - {max(ratios):.2f}x "
          f"(paper: 1.5x - 6x)\n")

    print("== E6: per-transfer latency at low load ==")
    latency_rows = latency_experiment(process_counts, transfers=8, config=config)
    print(format_latency_table(latency_rows))
    latency_ratios = [row.latency_ratio for row in latency_rows]
    print(f"\nlatency advantage at low load: up to {max(latency_ratios):.2f}x (paper: up to 2x)\n")

    print("== E8: messages per committed transfer ==")
    for row in message_complexity_experiment(process_counts[:2], config):
        print(f"  N={row['n']:>3}  consensusless={row['consensusless_msgs_per_tx']:>7}  "
              f"consensus-based={row['consensus_msgs_per_tx']:>7}")


if __name__ == "__main__":
    main()
