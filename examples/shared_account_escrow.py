#!/usr/bin/env python3
"""Experiment E7 scenario: a jointly-owned escrow account (Section 6).

Three partners share an escrow account: every outgoing payment must be
sequenced by their per-account BFT service (an owner-quorum sequencer) and is
then disseminated with the account-order secure broadcast.  Regular customer
accounts have a single owner and need no agreement at all.

The second half of the demo compromises the escrow's owners (silencing a
majority, including the sequencing leader) and shows the paper's containment
property: the escrow account loses liveness, but every other account keeps
working and no money is ever created or double-spent.

Usage:  python examples/shared_account_escrow.py
"""

from repro.common import OwnershipMap
from repro.mp.k_shared import KSharedSystem


def build_system(silent=()):
    ownership = OwnershipMap(
        {
            "escrow": (0, 1, 2),   # jointly owned by the three partners
            "3": (3,),             # customers
            "4": (4,),
            "5": (5,),
            "6": (6,),
        }
    )
    balances = {"escrow": 300, "3": 100, "4": 100, "5": 100, "6": 100}
    return KSharedSystem(
        ownership=ownership,
        process_count=7,
        initial_balances=balances,
        silent_processes=silent,
        seed=4,
    )


def healthy_run() -> None:
    print("== A healthy shared escrow account ==")
    system = build_system()
    system.submit(0.001, 0, "escrow", "3", 50)   # partner 0 releases funds to customer 3
    system.submit(0.001, 1, "escrow", "4", 60)   # partner 1 pays customer 4 concurrently
    system.submit(0.002, 3, "3", "escrow", 20)   # a customer pays into the escrow
    system.submit(0.003, 2, "escrow", "5", 40)
    result = system.run(until=3.0)
    print(f"committed {result.committed_count} transfers, "
          f"avg latency {result.average_latency * 1000:.1f} simulated ms")
    print("balances (as seen by customer 6):", system.balances_at(6))
    views = [node.all_known_balances() for node in system.correct_nodes()]
    print("all correct views identical:", all(view == views[0] for view in views))
    print()


def compromised_run() -> None:
    print("== The escrow's owners are compromised (2 of 3 silenced) ==")
    system = build_system(silent=(0, 1))
    system.submit(0.001, 2, "escrow", "3", 50)   # cannot gather an owner quorum -> stalls
    system.submit(0.002, 3, "3", "4", 10)        # unaffected accounts keep working
    system.submit(0.003, 4, "4", "5", 10)
    system.submit(0.004, 5, "5", "6", 10)
    result = system.run(until=1.5)
    sources = [record.transfer.source for record in result.committed]
    print(f"committed transfers: {result.committed_count} (sources: {sources})")
    print("escrow transfers committed:", sources.count("escrow"))
    print("=> the compromised escrow only loses its own liveness;")
    print("   the customer accounts completed all their payments.")


if __name__ == "__main__":
    healthy_run()
    compromised_run()
