#!/usr/bin/env python3
"""Experiment E4: a Byzantine account owner attempts a double spend.

A malicious owner crafts two conflicting transfers with the same sequence
number — paying its entire balance to two different merchants — and
equivocates at the broadcast level, telling each half of the system about a
different transfer.  The secure broadcast's quorum intersection guarantees
that correct processes never validate both: the attacker can at most block
its own account.

Usage:  python examples/double_spend_attack.py [--overlap 0.5] [--broadcast echo]
"""

import argparse

from repro.eval.experiments import ExperimentConfig, double_spend_experiment
from repro.network.node import NetworkConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--processes", type=int, default=10)
    parser.add_argument("--overlap", type=float, default=0.0,
                        help="fraction of processes told about BOTH conflicting transfers")
    parser.add_argument("--broadcast", choices=("bracha", "echo"), default="bracha")
    args = parser.parse_args()

    config = ExperimentConfig(
        transfers_per_process=3, broadcast=args.broadcast, network=NetworkConfig(seed=3)
    )
    outcome = double_spend_experiment(
        process_count=args.processes, config=config, overlap=args.overlap
    )

    print(f"system size:                      {outcome.process_count} processes")
    print(f"attacker:                         process {outcome.attacker}")
    print(f"honest transfers committed:       {outcome.committed_honest_transfers}")
    print(f"double spend observed anywhere:   {outcome.conflicting_validated_anywhere}")
    print(f"Definition 1 satisfied:           {outcome.definition_1_report.ok}")
    print(f"money supply conserved:           {outcome.supply_conserved}")
    if outcome.definition_1_report.violations:
        for violation in outcome.definition_1_report.violations:
            print("  violation:", violation)
    assert not outcome.conflicting_validated_anywhere
    assert outcome.supply_conserved
    print("\nThe attack is neutralised: at most one of the conflicting transfers can ever")
    print("be validated by correct processes; the attacker only risks blocking its own account.")


if __name__ == "__main__":
    main()
