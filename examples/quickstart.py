#!/usr/bin/env python3
"""Quickstart: the paper's results in two minutes.

1. Build an asset-transfer object from an atomic snapshot (Figure 1) — no
   consensus anywhere — and move money around.
2. Solve consensus among k processes using one k-shared asset-transfer
   object (Figure 2), demonstrating Theorem 2's lower bound.
3. Run the consensusless message-passing protocol (Figure 4) on a simulated
   Byzantine network and check Definition 1.

Run with:  python examples/quickstart.py
"""

from repro.common import OwnershipMap
from repro.core import ConsensusFromAssetTransfer, SnapshotAssetTransfer
from repro.mp.consensusless_transfer import account_of
from repro.mp.system import ClientSubmission, ConsensuslessSystem
from repro.shared_memory.afek_snapshot import AfekSnapshot
from repro.spec.byzantine_spec import ByzantineAssetTransferChecker


def shared_memory_demo() -> None:
    print("== Figure 1: asset transfer from registers (consensus number 1) ==")
    ownership = OwnershipMap.single_owner({"alice": 0, "bob": 1, "carol": 2})
    # The snapshot itself is built from single-writer registers (Afek et al.),
    # so the whole stack uses nothing stronger than read/write memory.
    asset_transfer = SnapshotAssetTransfer(
        ownership,
        initial_balances={"alice": 100, "bob": 50, "carol": 0},
        memory=AfekSnapshot(size=3),
    )
    print("alice -> bob 30:", asset_transfer.transfer_now(0, "alice", "bob", 30))
    print("bob -> carol 70:", asset_transfer.transfer_now(1, "bob", "carol", 70))
    print("alice overdraft of 200:", asset_transfer.transfer_now(0, "alice", "bob", 200))
    print("balances:", asset_transfer.balances_now())
    print()


def consensus_demo() -> None:
    print("== Figure 2: consensus from one k-shared asset-transfer object ==")
    k = 4
    protocol = ConsensusFromAssetTransfer(k=k)
    decisions = {p: protocol.propose_now(p, f"proposal-from-{p}") for p in range(k)}
    print("decisions:", decisions)
    assert len(set(decisions.values())) == 1, "consensus must agree"
    print()


def message_passing_demo() -> None:
    print("== Figure 4: consensusless payments on a Byzantine network ==")
    system = ConsensuslessSystem(process_count=6, initial_balance=100, broadcast="bracha", seed=1)
    submissions = [
        ClientSubmission(time=0.001 * i, issuer=i, destination=account_of((i + 1) % 6), amount=10)
        for i in range(6)
    ]
    system.schedule_submissions(submissions)
    result = system.run()
    print(f"committed {result.committed_count} transfers "
          f"in {result.duration * 1000:.1f} simulated ms "
          f"({result.messages_per_commit:.0f} messages per transfer)")
    report = ByzantineAssetTransferChecker(system.initial_balances()).check(system.observations())
    print("Definition 1 (no double spending, consistent views):", "OK" if report.ok else report.violations)
    print("balances seen by process 0:", system.balances_at(0))


if __name__ == "__main__":
    shared_memory_demo()
    consensus_demo()
    message_passing_demo()
